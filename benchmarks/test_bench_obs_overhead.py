"""Bench for the telemetry layer's overhead (docs/observability.md).

Runs the same scaled experiment at every ``--obs-level`` and records
the cost of each into ``BENCH_obs_overhead.json``.  The contract
asserted here:

* ``off`` and every other level produce **byte-identical** result
  summaries (telemetry must never perturb the simulation);
* the ``metrics`` level costs less than 5 % over ``off``.

Measuring a few percent on shared CI takes two defences against the
machine:

1. **Paired interleaving.**  Whole-run wall-clock ratios are hopeless
   — frequency scaling and noisy neighbours swing single runs by
   15 %+.  Instead an uninstrumented engine and an instrumented engine
   (same config, same seed, so identical workloads) are advanced
   *interleaved, one interval at a time*, with the leader alternating
   every interval.  Both see the same machine conditions within
   microseconds of each other, so drift cancels in the ratio.
2. **Trimmed per-interval sums.**  Timer interrupts land on a few
   percent of intervals and add heavy-tailed spikes that dominate a
   plain sum.  Per-interval times are kept as arrays and the top
   ``TRIM`` fraction of each side is dropped before summing; the
   ~64 sampled intervals (where the instrumented engine runs its
   periodic scans) are charged via a trimmed mean of their paired
   deltas, and one-time costs (storage observation, run snapshot,
   session finish) are added to the instrumented side.

Repeated trials of this estimator agree to a few tenths of a percent
where naive whole-run ratios swing by ten.

The sweep-scope rows (``sweep-off`` / ``sweep-metrics``) extend the
same contract to the executor's observability: a journaled sweep at
``--obs-level metrics`` carries the event bus *and* the obs artifact
store (per-run capture + content-addressed write,
docs/sweep_observability.md) and must stay within the same < 5 %
budget over the identical sweep at ``off`` (which already pays for
the journal and the bus).  Whole sweeps cannot be interleaved
interval-by-interval, so the pairing runs both sweeps back to back
with the leader alternating every trial, keeping the
least-interfered ratio.
"""

from __future__ import annotations

import gc
import json
from pathlib import Path
from time import perf_counter

from benchmarks.conftest import emit
from repro.exec import ResultCache, Supervision, canonical_json, execute
from repro.exec.spec import experiment_spec
from repro.obs import Observability
from repro.simulation.config import ScaledConfig
from repro.simulation.runner import build_engine, run_experiment

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"

TRIALS = 4
TRIM = 0.05  # fraction of the spikiest intervals dropped from each side
SWEEP_TRIALS = 4


def _config():
    return ScaledConfig(
        scale=10, warmup_intervals=300, measure_intervals=4500
    ).with_(technique="simple", num_stations=26, access_mean=1.0)


def _trimmed_sum(values):
    """Sum with the top ``TRIM`` fraction (interrupt spikes) dropped."""
    values = sorted(values)
    drop = int(len(values) * TRIM)
    return sum(values[: len(values) - drop]) if drop else sum(values)


def _paired_run(level: str):
    """One interleaved run; returns (t_off, t_obs) robust estimates.

    Per-interval times are collected into arrays; the instrumented
    engine's sampled intervals are estimated separately (their extra
    scan work is real cost, not spike noise) and one-time costs are
    charged to the instrumented side.
    """
    config = _config()
    total = config.warmup_intervals + config.measure_intervals
    obs = Observability(level=level)
    run_obs = obs.begin_run("bench", expected_intervals=total)
    engine_off = build_engine(config)
    engine_obs = build_engine(config, obs=run_obs)
    stride = run_obs.sample_stride
    off_times = []
    obs_times = []
    gc.collect()
    gc.disable()
    try:
        for interval in range(total):
            if interval % 2 == 0:
                start = perf_counter()
                engine_off.step()
                mid = perf_counter()
                engine_obs.step()
                end = perf_counter()
                off_times.append(mid - start)
                obs_times.append(end - mid)
            else:
                start = perf_counter()
                engine_obs.step()
                mid = perf_counter()
                engine_off.step()
                end = perf_counter()
                obs_times.append(mid - start)
                off_times.append(end - mid)
        start = perf_counter()
        engine_obs.policy.disk_manager.array.observe_storage(run_obs.registry)
        obs.finish_run(run_obs, None)
        obs.finish()
        one_time = perf_counter() - start
    finally:
        gc.enable()

    sampled = range(0, total, stride)
    sampled_set = set(sampled)
    off_u = [t for i, t in enumerate(off_times) if i not in sampled_set]
    obs_u = [t for i, t in enumerate(obs_times) if i not in sampled_set]
    off_s = _trimmed_sum(off_times[i] for i in sampled)
    t_off = _trimmed_sum(off_u) + off_s
    t_obs = _trimmed_sum(obs_u) + off_s
    # The sampled intervals' extra cost, spike-trimmed via paired deltas.
    deltas = sorted(obs_times[i] - off_times[i] for i in sampled)
    keep = deltas[: max(1, int(len(deltas) * (1 - 2 * TRIM)))]
    t_obs += max(0.0, sum(keep) / len(keep)) * len(deltas)
    t_obs += one_time
    return t_off, t_obs


def _measure():
    """Best (least-interfered) paired overhead ratio per level."""
    _paired_run("metrics")  # warm code paths and caches
    timings = {}
    for level in ("metrics", "trace"):
        best = None
        for _ in range(TRIALS):
            t_off, t_obs = _paired_run(level)
            if best is None or t_obs / t_off < best[1] / best[0]:
                best = (t_off, t_obs)
        timings[level] = best
    return timings


def _sweep_specs():
    return [
        experiment_spec(
            ScaledConfig(
                scale=10, warmup_intervals=200, measure_intervals=1200
            ).with_(
                technique="simple", num_stations=26, access_mean=mean
            ),
            label=f"bench-sweep-{mean}",
        )
        for mean in (1.0, 1.5, 2.0, 2.5)
    ]


def _sweep_run(level: str, root):
    """One fresh journaled sweep; returns (seconds, canonical rows)."""
    obs = Observability(level=level) if level != "off" else None
    cache = ResultCache(root)
    supervision = Supervision(handle_signals=False)
    gc.collect()
    start = perf_counter()
    records = execute(
        _sweep_specs(), cache=cache, obs=obs, supervision=supervision
    )
    elapsed = perf_counter() - start
    return elapsed, canonical_json([r.payload for r in records])


def _sweep_measure(tmp_path):
    """Summed paired (t_off, t_metrics) over alternating-order trials.

    Every run gets a cold cache so both sides simulate every row;
    ``off`` still journals and feeds the event bus, so the ratio
    isolates what ``--obs-level metrics`` adds on top: per-run
    telemetry capture plus the artifact-store writes.  Single sweeps
    are far too short to ratio individually (frequency scaling swings
    back-to-back runs by 10 %+), so the trials are *summed*, with the
    leader alternating every trial so linear drift cancels.
    """
    _sweep_run("metrics", tmp_path / "warm")  # warm code paths
    totals = {"off": 0.0, "metrics": 0.0}
    rows = {}
    for trial in range(SWEEP_TRIALS):
        order = ("off", "metrics") if trial % 2 == 0 else ("metrics", "off")
        for level in order:
            seconds, payload_rows = _sweep_run(
                level, tmp_path / f"trial{trial}-{level}"
            )
            totals[level] += seconds
            rows[level] = payload_rows
    return (totals["off"], totals["metrics"]), rows


def _summaries():
    """Result summaries per level (untimed; must be byte-identical)."""
    out = {}
    for level in ("off", "metrics", "trace"):
        obs = Observability(level=level) if level != "off" else None
        result = run_experiment(_config(), obs=obs)
        if obs is not None:
            obs.finish()
        out[level] = result.summary()
    return out


def test_obs_overhead(benchmark, tmp_path):
    def measure():
        return _measure(), _sweep_measure(tmp_path)

    timings, (sweep_best, sweep_rows) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    summaries = _summaries()

    rows = [
        {"level": "off", "cpu_seconds": round(timings["metrics"][0], 4),
         "overhead_pct": 0.0}
    ]
    for level in ("metrics", "trace"):
        t_off, t_obs = timings[level]
        rows.append(
            {
                "level": level,
                "cpu_seconds": round(t_obs, 4),
                "overhead_pct": round(100.0 * (t_obs / t_off - 1.0), 2),
            }
        )
    sweep_off, sweep_met = sweep_best
    rows.append(
        {"level": "sweep-off", "cpu_seconds": round(sweep_off, 4),
         "overhead_pct": 0.0}
    )
    rows.append(
        {
            "level": "sweep-metrics",
            "cpu_seconds": round(sweep_met, 4),
            "overhead_pct": round(100.0 * (sweep_met / sweep_off - 1.0), 2),
        }
    )
    emit("Telemetry overhead by --obs-level (paired interleaved)", rows)
    RESULT_PATH.write_text(json.dumps(rows, indent=2) + "\n")

    # Telemetry must never change what the simulation computes.
    assert summaries["metrics"] == summaries["off"]
    assert summaries["trace"] == summaries["off"]
    assert sweep_rows["metrics"] == sweep_rows["off"]
    # The headline contract: metrics-level telemetry is cheap.
    t_off, t_met = timings["metrics"]
    assert t_met < t_off * 1.05, (
        f"metrics level costs {100 * (t_met / t_off - 1):.1f}% "
        f"(contract: < 5%)"
    )
    # And so is sweep-scope observability (bus + artifact store).
    assert sweep_met < sweep_off * 1.05, (
        f"sweep at metrics costs {100 * (sweep_met / sweep_off - 1):.1f}% "
        f"over off (contract: < 5%)"
    )
