"""Bench for the telemetry layer's overhead (docs/observability.md).

Runs the same scaled experiment at every ``--obs-level`` and records
the cost of each into ``BENCH_obs_overhead.json``.  The contract
asserted here:

* ``off`` and every other level produce **byte-identical** result
  summaries (telemetry must never perturb the simulation);
* the ``metrics`` level costs less than 5 % over ``off``.

Measuring a few percent on shared CI takes two defences against the
machine:

1. **Paired interleaving.**  Whole-run wall-clock ratios are hopeless
   — frequency scaling and noisy neighbours swing single runs by
   15 %+.  Instead an uninstrumented engine and an instrumented engine
   (same config, same seed, so identical workloads) are advanced
   *interleaved, one interval at a time*, with the leader alternating
   every interval.  Both see the same machine conditions within
   microseconds of each other, so drift cancels in the ratio.
2. **Trimmed per-interval sums.**  Timer interrupts land on a few
   percent of intervals and add heavy-tailed spikes that dominate a
   plain sum.  Per-interval times are kept as arrays and the top
   ``TRIM`` fraction of each side is dropped before summing; the
   ~64 sampled intervals (where the instrumented engine runs its
   periodic scans) are charged via a trimmed mean of their paired
   deltas, and one-time costs (storage observation, run snapshot,
   session finish) are added to the instrumented side.

Repeated trials of this estimator agree to a few tenths of a percent
where naive whole-run ratios swing by ten.
"""

from __future__ import annotations

import gc
import json
from pathlib import Path
from time import perf_counter

from benchmarks.conftest import emit
from repro.obs import Observability
from repro.simulation.config import ScaledConfig
from repro.simulation.runner import build_engine, run_experiment

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"

TRIALS = 4
TRIM = 0.05  # fraction of the spikiest intervals dropped from each side


def _config():
    return ScaledConfig(
        scale=10, warmup_intervals=300, measure_intervals=4500
    ).with_(technique="simple", num_stations=26, access_mean=1.0)


def _trimmed_sum(values):
    """Sum with the top ``TRIM`` fraction (interrupt spikes) dropped."""
    values = sorted(values)
    drop = int(len(values) * TRIM)
    return sum(values[: len(values) - drop]) if drop else sum(values)


def _paired_run(level: str):
    """One interleaved run; returns (t_off, t_obs) robust estimates.

    Per-interval times are collected into arrays; the instrumented
    engine's sampled intervals are estimated separately (their extra
    scan work is real cost, not spike noise) and one-time costs are
    charged to the instrumented side.
    """
    config = _config()
    total = config.warmup_intervals + config.measure_intervals
    obs = Observability(level=level)
    run_obs = obs.begin_run("bench", expected_intervals=total)
    engine_off = build_engine(config)
    engine_obs = build_engine(config, obs=run_obs)
    stride = run_obs.sample_stride
    off_times = []
    obs_times = []
    gc.collect()
    gc.disable()
    try:
        for interval in range(total):
            if interval % 2 == 0:
                start = perf_counter()
                engine_off.step()
                mid = perf_counter()
                engine_obs.step()
                end = perf_counter()
                off_times.append(mid - start)
                obs_times.append(end - mid)
            else:
                start = perf_counter()
                engine_obs.step()
                mid = perf_counter()
                engine_off.step()
                end = perf_counter()
                obs_times.append(mid - start)
                off_times.append(end - mid)
        start = perf_counter()
        engine_obs.policy.disk_manager.array.observe_storage(run_obs.registry)
        obs.finish_run(run_obs, None)
        obs.finish()
        one_time = perf_counter() - start
    finally:
        gc.enable()

    sampled = range(0, total, stride)
    sampled_set = set(sampled)
    off_u = [t for i, t in enumerate(off_times) if i not in sampled_set]
    obs_u = [t for i, t in enumerate(obs_times) if i not in sampled_set]
    off_s = _trimmed_sum(off_times[i] for i in sampled)
    t_off = _trimmed_sum(off_u) + off_s
    t_obs = _trimmed_sum(obs_u) + off_s
    # The sampled intervals' extra cost, spike-trimmed via paired deltas.
    deltas = sorted(obs_times[i] - off_times[i] for i in sampled)
    keep = deltas[: max(1, int(len(deltas) * (1 - 2 * TRIM)))]
    t_obs += max(0.0, sum(keep) / len(keep)) * len(deltas)
    t_obs += one_time
    return t_off, t_obs


def _measure():
    """Best (least-interfered) paired overhead ratio per level."""
    _paired_run("metrics")  # warm code paths and caches
    timings = {}
    for level in ("metrics", "trace"):
        best = None
        for _ in range(TRIALS):
            t_off, t_obs = _paired_run(level)
            if best is None or t_obs / t_off < best[1] / best[0]:
                best = (t_off, t_obs)
        timings[level] = best
    return timings


def _summaries():
    """Result summaries per level (untimed; must be byte-identical)."""
    out = {}
    for level in ("off", "metrics", "trace"):
        obs = Observability(level=level) if level != "off" else None
        result = run_experiment(_config(), obs=obs)
        if obs is not None:
            obs.finish()
        out[level] = result.summary()
    return out


def test_obs_overhead(benchmark):
    timings = benchmark.pedantic(_measure, rounds=1, iterations=1)
    summaries = _summaries()

    rows = [
        {"level": "off", "cpu_seconds": round(timings["metrics"][0], 4),
         "overhead_pct": 0.0}
    ]
    for level in ("metrics", "trace"):
        t_off, t_obs = timings[level]
        rows.append(
            {
                "level": level,
                "cpu_seconds": round(t_obs, 4),
                "overhead_pct": round(100.0 * (t_obs / t_off - 1.0), 2),
            }
        )
    emit("Telemetry overhead by --obs-level (paired interleaved)", rows)
    RESULT_PATH.write_text(json.dumps(rows, indent=2) + "\n")

    # Telemetry must never change what the simulation computes.
    assert summaries["metrics"] == summaries["off"]
    assert summaries["trace"] == summaries["off"]
    # The headline contract: metrics-level telemetry is cheap.
    t_off, t_met = timings["metrics"]
    assert t_met < t_off * 1.05, (
        f"metrics level costs {100 * (t_met / t_off - 1):.1f}% "
        f"(contract: < 5%)"
    )
