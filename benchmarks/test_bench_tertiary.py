"""Bench for §3.2.4 — tape layout: sequential vs fragment-ordered."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments.tertiary import layout_cost_rows, simulated_comparison


def test_tertiary_layout_costs(benchmark):
    rows = benchmark(layout_cost_rows)
    emit("Section 3.2.4: per-object materialisation cost", rows)
    by_order = {row["tape_order"]: row for row in rows}
    # The paper: a sequential recording repositions once per subobject,
    # "spending a major fraction of its time repositioning its head
    # (wasteful work) instead of producing data (useful work)".
    assert by_order["sequential"]["wasted_pct"] > 50.0
    assert by_order["fragment_ordered"]["wasted_pct"] < 1.0
    assert by_order["sequential"]["repositions"] == 3000
    assert by_order["fragment_ordered"]["repositions"] == 1


def test_tertiary_layout_simulated(benchmark):
    rows = benchmark.pedantic(
        simulated_comparison,
        kwargs=dict(scale=50, num_stations=6),
        rounds=1,
        iterations=1,
    )
    emit("Section 3.2.4: simulated throughput under each tape order", rows)
    by_order = {row["tape_order"]: row for row in rows}
    # Fragment-ordered recordings keep the pipeline moving; sequential
    # recordings burn the device on repositions and throughput drops.
    assert (
        by_order["fragment_ordered"]["displays_per_hour"]
        > by_order["sequential"]["displays_per_hour"]
    )
    # Both keep the tertiary on the critical path in this workload.
    assert by_order["sequential"]["tertiary_util"] > 0.3
    assert by_order["fragment_ordered"]["materializations"] > 0
