"""Bench for the sweep executor: parallel fan-out and the result cache.

Runs the scale-50 Figure 8 grid three ways — serial cold, parallel
cold (4 workers), and warm-cache — and records the wall-clock of each
into ``BENCH_sweep_parallel.json`` together with the machine's CPU
count.  The contracts asserted here:

* all three executions produce **byte-identical** result rows;
* a warm cache serves the sweep at least 2.5x faster than simulating;
* with >= 4 CPUs, 4 workers beat serial by at least 2.5x (on smaller
  machines the speedup is recorded but not asserted — a 1-CPU CI box
  cannot parallelise anything).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from time import perf_counter

from benchmarks.conftest import emit
from repro.exec import ResultCache, canonical_json
from repro.experiments.figure8 import figure8_rows, run_figure8

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep_parallel.json"

SCALE = 50
JOBS = 4


def _grid(jobs: int, cache=None):
    start = perf_counter()
    curves = run_figure8(scale=SCALE, jobs=jobs, cache=cache)
    return perf_counter() - start, figure8_rows(curves)


def test_sweep_parallel(benchmark, tmp_path):
    def measure():
        _grid(1)  # warm code paths and the catalog memo
        serial_s, serial_rows = _grid(1)
        parallel_s, parallel_rows = _grid(JOBS)
        cache = ResultCache(tmp_path / "cache")
        _grid(JOBS, cache=cache)
        warm_s, warm_rows = _grid(JOBS, cache=cache)
        return {
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "warm_s": warm_s,
            "rows": {"serial": serial_rows, "parallel": parallel_rows,
                     "warm": warm_rows},
        }

    t = benchmark.pedantic(measure, rounds=1, iterations=1)

    # The executor's hard contract: strategy never changes the rows.
    serial = canonical_json(t["rows"]["serial"])
    assert canonical_json(t["rows"]["parallel"]) == serial
    assert canonical_json(t["rows"]["warm"]) == serial

    cpus = os.cpu_count() or 1
    parallel_speedup = t["serial_s"] / t["parallel_s"]
    cache_speedup = t["serial_s"] / t["warm_s"]
    rows = [
        {
            "execution": "serial cold",
            "jobs": 1,
            "seconds": round(t["serial_s"], 4),
            "speedup_vs_serial": 1.0,
        },
        {
            "execution": "parallel cold",
            "jobs": JOBS,
            "seconds": round(t["parallel_s"], 4),
            "speedup_vs_serial": round(parallel_speedup, 2),
        },
        {
            "execution": "warm cache",
            "jobs": JOBS,
            "seconds": round(t["warm_s"], 4),
            "speedup_vs_serial": round(cache_speedup, 2),
        },
    ]
    emit(f"Figure 8 grid (scale {SCALE}) by execution strategy", rows)
    RESULT_PATH.write_text(
        json.dumps(
            {
                "cpu_count": cpus,
                "grid_runs": len(t["rows"]["serial"]),
                "rows_byte_identical": True,
                "parallel_speedup": round(parallel_speedup, 2),
                "cache_speedup": round(cache_speedup, 2),
                "rows": rows,
            },
            indent=2,
        )
        + "\n"
    )

    assert cache_speedup >= 2.5, (
        f"warm cache only {cache_speedup:.2f}x faster (contract: >= 2.5x)"
    )
    if cpus >= JOBS:
        assert parallel_speedup >= 2.5, (
            f"{JOBS} workers only {parallel_speedup:.2f}x faster on "
            f"{cpus} CPUs (contract: >= 2.5x)"
        )
