"""Benches for the paper's §5 future-work directions, implemented here:

* seek/latency buffering — how much effective bandwidth a moderate
  per-drive buffer recovers over worst-case provisioning;
* fairness — should a small request have priority?
* mixed-media design — staggered striping vs widest-cluster layout
  (§3.2's motivating waste argument, measured end to end).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.analysis.seek_buffering import (
    average_overhead_bandwidth,
    buffering_table,
)
from repro.experiments.mixed_media import (
    bandwidth_waste_naive,
    fairness_comparison,
    run_mixed_media,
)
from repro.hardware.disk import SABRE_DISK


def test_seek_buffering_study(benchmark):
    table = benchmark.pedantic(
        buffering_table, args=(SABRE_DISK,), kwargs=dict(activations=10_000),
        rounds=1, iterations=1,
    )
    rows = [
        {
            "buffer_cylinders": row.buffer_cylinders,
            "effective_mbps": round(row.effective_bandwidth_mbps, 2),
            "gain_pct": round(row.gain_over_worst_case_pct, 2),
        }
        for row in table
    ]
    ceiling = average_overhead_bandwidth(SABRE_DISK)
    rows.append(
        {"buffer_cylinders": "inf (avg provisioning)",
         "effective_mbps": round(ceiling, 2),
         "gain_pct": round((ceiling / SABRE_DISK.effective_bandwidth(1) - 1)
                           * 100, 2)}
    )
    emit("§5 future work: bandwidth vs per-drive playout buffer", rows)
    # "a cylinder or so" of buffering recovers most of the gap between
    # worst-case and average-overhead provisioning.
    one_cylinder = next(r for r in table if r.buffer_cylinders == 1.0)
    assert one_cylinder.gain_over_worst_case_pct > 5.0
    assert one_cylinder.effective_bandwidth_mbps < ceiling


def test_fairness_disciplines(benchmark):
    rows = benchmark.pedantic(
        fairness_comparison, kwargs=dict(measure_intervals=1500),
        rounds=1, iterations=1,
    )
    emit("§5 future work: queue disciplines (narrow vs wide displays)", rows)
    by_discipline = {row["discipline"]: row for row in rows}
    # Small-first cuts the narrow displays' latency.
    assert (
        by_discipline["sjf"]["narrow_latency_ivs"]
        <= by_discipline["scan"]["narrow_latency_ivs"]
    )
    # Time fragmentation penalises wide displays under every policy.
    for row in rows:
        assert row["wide_latency_ivs"] > row["narrow_latency_ivs"]


def test_mixed_media_design(benchmark):
    rows = benchmark.pedantic(
        run_mixed_media, kwargs=dict(num_stations=16, measure_intervals=1500),
        rounds=1, iterations=1,
    )
    for row in rows:
        row["naive_waste_pct"] = round(bandwidth_waste_naive() * 100, 1)
    emit("§3.2 motivation: staggered vs widest-cluster design", rows)
    by_design = {row["design"]: row for row in rows}
    # The naive design wastes 37.5% of claimed bandwidth on this mix;
    # staggered converts that into throughput.
    assert (
        by_design["staggered"]["displays_per_hour"]
        > 1.15 * by_design["naive-Mmax-clusters"]["displays_per_hour"]
    )
