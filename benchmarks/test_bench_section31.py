"""Bench for §3.1's numeric example (Sabre drive, fragment-size
trade-off, worst-case initiation delays)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments.section31 import fragment_size_tradeoff, sabre_numbers


def test_section31_sabre_numbers(benchmark):
    numbers = benchmark(sabre_numbers)
    emit("Section 3.1: Sabre drive numbers", [numbers])
    # Paper values: S = 301.83 / 555.83 ms, waste 17.2% / ~10%,
    # initiation delay ~9 s / ~16 s (90 disks, 30 clusters).
    assert numbers["service_1cyl_ms"] == pytest.approx(301.83, abs=0.1)
    assert numbers["service_2cyl_ms"] == pytest.approx(555.83, abs=0.1)
    assert numbers["waste_1cyl_pct"] == pytest.approx(17.2, abs=0.1)
    assert numbers["waste_2cyl_pct"] == pytest.approx(10.0, abs=0.2)
    assert numbers["delay_90disks_1cyl_s"] == pytest.approx(9.0, abs=0.3)
    assert numbers["delay_90disks_2cyl_s"] == pytest.approx(16.0, abs=0.3)


def test_section31_fragment_size_tradeoff(benchmark):
    rows = benchmark(fragment_size_tradeoff)
    emit("Section 3.1: fragment-size trade-off", rows)
    bandwidths = [r["effective_bandwidth_mbps"] for r in rows]
    delays = [r["worst_delay_90disks_s"] for r in rows]
    wastes = [r["wasted_percent"] for r in rows]
    # Bandwidth up (desirable), latency up (undesirable), waste down.
    assert bandwidths == sorted(bandwidths)
    assert delays == sorted(delays)
    assert wastes == sorted(wastes, reverse=True)
    # Diminishing gains beyond 2 cylinders (the paper's justification
    # for fixing fragments at 2 cylinders in §3).
    gain_12 = bandwidths[1] - bandwidths[0]
    gain_23 = bandwidths[2] - bandwidths[1]
    assert gain_23 < gain_12 / 2
