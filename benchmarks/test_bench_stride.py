"""Benches for §3.2.2 (stride trade-offs) and §3.2.3 (rounding waste)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments.stride import (
    k_extremes_analysis,
    rounding_waste_rows,
    stride_sweep,
)


def test_stride_sweep(benchmark, quick_config):
    """Throughput/latency/skew across strides, staggered striping.

    Paper claims: k=D blocks colliding requests for a whole display
    time; small k spreads objects thinner and raises expected rotation
    latency; gcd(D,k)=1 guarantees no skew.
    """
    rows = benchmark.pedantic(
        stride_sweep,
        kwargs=dict(
            strides=[1, 2, 5, 11, quick_config.num_disks],
            config=quick_config,
            num_stations=12,
            access_mean=1.0,
        ),
        rounds=1,
        iterations=1,
    )
    emit("Section 3.2.2: stride sweep (staggered, 12 stations)", rows)
    by_k = {row["stride"]: row for row in rows}
    d = quick_config.num_disks
    # Skew-free exactly when gcd(D, k) = 1.
    assert by_k[1]["skew_free"] and by_k[11]["skew_free"]
    assert not by_k[2]["skew_free"] and not by_k[5]["skew_free"]
    assert not by_k[d]["skew_free"]
    assert by_k[1]["relative_skew"] == 0.0
    # k = D pins each object to M drives; small k spreads it widely.
    assert by_k[d]["disks_used"] == quick_config.degree
    assert by_k[1]["disks_used"] == d
    # k = D serialises colliding displays: far worse latency.
    assert by_k[d]["max_latency_s"] > by_k[5]["max_latency_s"]
    # Moderate strides sustain (near-)saturated throughput.
    assert by_k[5]["displays_per_hour"] >= 0.8 * by_k[1]["displays_per_hour"]


def test_k_extremes_closed_form(benchmark):
    analysis = benchmark(k_extremes_analysis)
    emit("Section 3.2.2: k extremes (closed form)", [analysis])
    # The paper: with k=D a colliding request waits a whole display
    # time — "very much larger and generally unacceptable" vs S(C_i).
    assert analysis["kD_blocking_s"] > 10 * analysis["kM_worst_wait_s"]


def test_rounding_waste(benchmark):
    rows = benchmark(rounding_waste_rows)
    emit("Section 3.2.3: whole-disk vs logical-half-disk waste", rows)
    by_bw = {row["display_mbps"]: row for row in rows}
    assert by_bw[30.0]["whole_disk_waste_pct"] == pytest.approx(25.0)
    assert by_bw[30.0]["half_disk_waste_pct"] == pytest.approx(0.0)
    for row in rows:
        assert row["half_disk_waste_pct"] <= row["whole_disk_waste_pct"] + 1e-9
