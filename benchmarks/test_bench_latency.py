"""Bench: start-up latency distributions (the §3.1/§3.2.2 latency
story measured end to end)."""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments.latency_profile import latency_profiles


def test_latency_profiles(benchmark, quick_config):
    rows = benchmark.pedantic(
        latency_profiles,
        kwargs=dict(
            config=quick_config.with_(measure_intervals=3000),
            num_stations=12,
            access_mean=1.0,
        ),
        rounds=1,
        iterations=1,
    )
    emit("Start-up latency quantiles (12 stations, hot skew)", rows)
    by_technique = {row["technique"]: row for row in rows}
    striping, vdr = by_technique["simple"], by_technique["vdr"]
    # Striping's pooled rotating slots: median waits around a service
    # time; VDR's partitioned clusters: tail waits around a display
    # time (the paper's k=M vs k=D argument, live).
    assert striping["p50_s"] <= vdr["p50_s"] + 1.0
    assert striping["p99_s"] < vdr["p99_s"]
    assert striping["max_s"] < vdr["max_s"]
    # The worst VDR wait approaches a display time (181 s scaled).
    assert vdr["max_s"] > 60.0