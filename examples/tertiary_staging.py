#!/usr/bin/env python3
"""Materialising objects from tertiary store (§3.2.4).

Shows the cost of the tape layout decision: an object recorded
*sequentially* forces the tertiary device to reposition at every
subobject boundary, while the paper's *fragment-ordered* recording
streams with one reposition.  Then runs a cold-start server (nothing
preloaded) and reports how the tertiary queue drains.

Run:  python examples/tertiary_staging.py
"""

from __future__ import annotations

from repro import ScaledConfig, run_experiment
from repro.analysis.reporting import format_table
from repro.experiments.tertiary import layout_cost_rows, simulated_comparison
from repro.media.tape_layout import TapeOrder


def main() -> None:
    print("Per-object materialisation cost (full-scale object, 40 mbps "
          "tertiary, 5 s repositions):\n")
    print(format_table(layout_cost_rows()))

    print("\nSimulated cold-ish server under each tape order "
          "(uniform access, database 10x disk capacity):\n")
    print(format_table(simulated_comparison(scale=50, num_stations=6)))

    print("\nCold start at 1/50 scale (no preload, fragment-ordered):")
    config = ScaledConfig(
        scale=50,
        technique="staggered",
        num_stations=4,
        access_mean=1.0 / 5,
        preload=False,
        tape_order=TapeOrder.FRAGMENT_ORDERED,
        warmup_intervals=0,
        measure_intervals=4000,
    )
    result = run_experiment(config)
    stats = result.policy_stats
    print(
        f"  displays/hour: {result.throughput_per_hour:.1f}   "
        f"materialisations: {stats['tertiary_completed']:.0f}   "
        f"tertiary utilisation: {stats['tertiary_utilization']:.0%}   "
        f"hit rate after warm-up: {stats['hit_rate']:.0%}"
    )
    print(
        "  the first displays were staged from tape; once the hot set "
        "is resident, the fragment-ordered layout keeps the occasional "
        "miss streaming instead of seeking."
    )


if __name__ == "__main__":
    main()
