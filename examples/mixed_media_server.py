#!/usr/bin/env python3
"""A mixed-media video server on staggered striping (§3.2, Figure 5).

Builds the paper's Figure 5 database — Y at 80 mbps (M=4), X at
60 mbps (M=3), Z at 40 mbps (M=2) — on 12 drives with stride 1,
prints the placement grid exactly as the paper draws it, then serves
concurrent displays of all three media types through the scheduler,
demonstrating that one system handles heterogeneous bandwidths with a
single fragment size and interval length.

Run:  python examples/mixed_media_server.py
"""

from __future__ import annotations

from repro.core.admission import AdmissionMode
from repro.core.disk_manager import DiskManager
from repro.core.object_manager import ObjectManager
from repro.core.scheduler import StaggeredStripingPolicy
from repro.experiments.layouts import figure5_grid, grid_to_text
from repro.hardware.disk import TABLE3_DISK
from repro.hardware.disk_array import DiskArray
from repro.media.catalog import build_mixed_catalog
from repro.simulation.policy import Request


def main() -> None:
    print("Figure 5 placement (D=12, k=1):\n")
    print(grid_to_text(figure5_grid(6)))

    catalog = build_mixed_catalog(
        specs=[
            {"name": "Y-hdtv", "display_bandwidth": 80.0, "num_subobjects": 24},
            {"name": "X-video", "display_bandwidth": 60.0, "num_subobjects": 24},
            {"name": "Z-lowres", "display_bandwidth": 40.0, "num_subobjects": 24},
        ],
        fragment_size=TABLE3_DISK.cylinder_capacity,
        disk_bandwidth=20.0,
    )
    array = DiskArray(model=TABLE3_DISK, num_disks=12)
    disk_manager = DiskManager(array=array, stride=1, placement_alignment=1)
    object_manager = ObjectManager(catalog, capacity=catalog.total_size)
    policy = StaggeredStripingPolicy(
        catalog=catalog,
        disk_manager=disk_manager,
        object_manager=object_manager,
        tertiary_manager=None,
        admission_mode=AdmissionMode.FRAGMENTED,
    )
    # Place the three objects at the paper's drives: Y@0, X@4, Z@7.
    for object_id, start in ((0, 0), (1, 4), (2, 7)):
        disk_manager.place_object(catalog.get(object_id), start_disk=start)
        object_manager.add_resident(object_id)

    names = {obj.object_id: obj.media_type.name for obj in catalog}
    print("\nServing one display of each media type concurrently:")
    for object_id in (0, 1, 2):
        policy.submit(
            Request(request_id=object_id + 1, station_id=object_id,
                    object_id=object_id, issued_at=0),
            interval=0,
        )
    completions = []
    for interval in range(64):
        for done in policy.advance(interval):
            completions.append(done)
            obj = catalog.get(done.request.object_id)
            print(
                f"  {names[obj.object_id]:9s} M={obj.degree}: delivered "
                f"{obj.num_subobjects} subobjects in intervals "
                f"[{done.deliver_start}, {done.finished_at}] — "
                f"startup latency {done.startup_latency} interval(s)"
            )
        if len(completions) == 3:
            break
    used = 4 + 3 + 2
    print(
        f"\nAll three ran simultaneously using {used} of 12 drives per "
        f"interval — no bandwidth wasted on over-wide clusters "
        f"(a naive 4-drive-cluster design would burn "
        f"{(3 * 4 - used) * 20} mbps)."
    )


if __name__ == "__main__":
    main()
