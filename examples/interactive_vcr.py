#!/usr/bin/env python3
"""VCR operations on an active display: pause-free seek, rewind, and
fast-forward-with-scan via the replica object (§3.2.5).

Run:  python examples/interactive_vcr.py
"""

from __future__ import annotations

from repro.core.admission import AdmissionMode
from repro.core.disk_manager import DiskManager
from repro.core.ff_rewind import (
    build_ff_replica,
    normal_position,
    replica_position,
)
from repro.core.object_manager import ObjectManager
from repro.core.scheduler import StaggeredStripingPolicy
from repro.hardware.disk import TABLE3_DISK
from repro.hardware.disk_array import DiskArray
from repro.media.catalog import Catalog
from repro.media.objects import MediaObject, MediaType
from repro.simulation.policy import Request


def main() -> None:
    movie = MediaObject(
        object_id=0,
        media_type=MediaType(name="movie", display_bandwidth=100.0),
        num_subobjects=64,
        degree=5,
        fragment_size=TABLE3_DISK.cylinder_capacity,
    )
    replica = build_ff_replica(movie, replica_id=1)
    print(
        f"movie: {movie.num_subobjects} subobjects, "
        f"{movie.display_time:.0f} s at {movie.display_bandwidth:g} mbps"
    )
    print(
        f"fast-forward replica: every 16th frame, "
        f"{replica.num_subobjects} subobjects "
        f"({replica.size / movie.size:.1%} of the movie's size)"
    )

    catalog = Catalog([movie, replica])
    array = DiskArray(model=TABLE3_DISK, num_disks=20)
    disk_manager = DiskManager(array=array, stride=1)
    object_manager = ObjectManager(catalog, capacity=catalog.total_size)
    policy = StaggeredStripingPolicy(
        catalog=catalog,
        disk_manager=disk_manager,
        object_manager=object_manager,
        tertiary_manager=None,
        admission_mode=AdmissionMode.FRAGMENTED,
    )
    policy.preload([0, 1])

    # Start watching the movie.
    policy.submit(
        Request(request_id=1, station_id=0, object_id=0, issued_at=0),
        interval=0,
    )
    interval = 0
    for interval in range(10):
        policy.advance(interval)
    display_id = next(iter(policy._active))
    print(f"\n[t={interval}] watching... delivered ~{interval + 1} subobjects")

    # The viewer fast-forwards to three quarters in.
    target = 48
    seek_at = interval + 1
    print(f"[t={seek_at}] fast-forward (seek) to subobject {target}")
    print(
        f"    scan position maps to replica subobject "
        f"{replica_position(movie, replica, target)} and back to movie "
        f"subobject {normal_position(movie, replica, replica_position(movie, replica, target))}"
    )
    replacement = policy.reposition(display_id, target, seek_at)
    completions = []
    for interval in range(seek_at, 200):
        completions.extend(policy.advance(interval))
        if completions:
            break
    done = completions[0]
    print(
        f"[t={done.finished_at}] movie finished: the tail "
        f"({movie.num_subobjects - target} subobjects) played from the "
        f"seek point with no hiccup (seek latency "
        f"{replacement.deliver_start - seek_at} interval(s))"
    )

    # Fast-forward *with scan*: display the replica instead.
    print("\nfast-forward with scan: displaying the 1/16 replica")
    policy.submit(
        Request(request_id=2, station_id=0, object_id=1,
                issued_at=done.finished_at + 1),
        interval=done.finished_at + 1,
    )
    scan_done = []
    for interval in range(done.finished_at + 1, done.finished_at + 100):
        scan_done.extend(policy.advance(interval))
        if scan_done:
            break
    scan = scan_done[0]
    print(
        f"    replica covered the whole movie in "
        f"{scan.service_intervals} intervals vs {movie.num_subobjects} "
        f"for normal speed — a {movie.num_subobjects // scan.service_intervals}x scan"
    )


if __name__ == "__main__":
    main()
