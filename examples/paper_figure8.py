#!/usr/bin/env python3
"""Reproduce Figure 8 and Table 4 of the paper.

By default runs the 1/10-scale configuration (a couple of minutes).
``--full`` runs the paper's exact Table 3 parameters — 1000 drives,
2000 objects of 3000 subobjects, stations 1..256 — which takes on the
order of an hour of CPU.

Run:  python examples/paper_figure8.py [--full] [--scale N]
"""

from __future__ import annotations

import argparse
import time

from repro.analysis.reporting import format_table
from repro.experiments.figure8 import (
    PAPER_MEANS,
    PAPER_STATIONS,
    figure8_rows,
    run_figure8,
    scaled_means,
    scaled_stations,
)
from repro.experiments.table4 import (
    PAPER_TABLE4,
    PAPER_TABLE4_STATIONS,
    run_table4,
    scaled_table4_stations,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run the paper's full-scale configuration")
    parser.add_argument("--scale", type=int, default=10,
                        help="linear scale divisor (ignored with --full)")
    args = parser.parse_args()
    scale = 1 if args.full else args.scale

    stations = PAPER_STATIONS if scale == 1 else scaled_stations(scale)
    means = list(PAPER_MEANS) if scale == 1 else scaled_means(scale)

    print(f"Figure 8 at scale 1/{scale}: stations={stations}, means={means}")
    started = time.time()
    curves = run_figure8(scale=scale, stations=stations, means=means)
    print(f"({time.time() - started:.0f}s)")
    for mean in means:
        label = PAPER_MEANS.get(mean * scale, f"mean {mean:g}")
        print(f"\n--- Figure 8: {label} (mean {mean:g}) ---")
        rows = [r for r in figure8_rows(curves) if r["mean"] == mean]
        print(format_table(rows, columns=[
            "technique", "stations", "displays_per_hour", "hit_rate",
            "tertiary_util", "latency_s",
        ]))

    table4_stations = (
        PAPER_TABLE4_STATIONS if scale == 1 else scaled_table4_stations(scale)
    )
    print("\n--- Table 4: % improvement of simple striping over VDR ---")
    rows = run_table4(scale=scale, stations=table4_stations, means=means)
    print(format_table(rows))
    print("\nPaper's Table 4 for comparison:")
    paper_rows = []
    for paper_stations in PAPER_TABLE4_STATIONS:
        row = {"stations": paper_stations}
        for paper_mean in PAPER_MEANS:
            row[f"mean {paper_mean:g}"] = (
                f"{PAPER_TABLE4[(paper_stations, paper_mean)]:.2f}%"
            )
        paper_rows.append(row)
    print(format_table(paper_rows))


if __name__ == "__main__":
    main()
