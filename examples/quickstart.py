#!/usr/bin/env python3
"""Quickstart: run one staggered-striping experiment and read the results.

Builds the paper's Table 3 system at 1/10 scale, displays movies from
16 stations with a skewed access pattern, and compares simple striping
against the virtual-data-replication baseline.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ScaledConfig, improvement_percent, run_experiment
from repro.analysis.reporting import format_table


def main() -> None:
    config = ScaledConfig(
        scale=10,  # 100 drives, 200 objects — every paper ratio kept
        num_stations=16,
        access_mean=1.0,  # "highly skewed" (paper mean 10, scaled /10)
    )
    print(f"system: {config.describe()}")
    print(
        f"  M={config.degree} drives/display, R={config.num_clusters} "
        f"clusters, interval={config.interval_length * 1000:.1f} ms, "
        f"display={config.display_time:.0f} s"
    )

    striping = run_experiment(config.with_(technique="simple"))
    vdr = run_experiment(config.with_(technique="vdr"))

    rows = [striping.summary(), vdr.summary()]
    print()
    print(format_table(rows, columns=[
        "technique", "stations", "completed", "throughput_per_hour",
        "mean_latency_s", "hit_rate",
    ]))
    print()
    print(
        f"simple striping beats virtual data replication by "
        f"{improvement_percent(striping, vdr):.1f}% "
        f"(paper's Table 4 reports 5-126% depending on load)"
    )


if __name__ == "__main__":
    main()
