#!/usr/bin/env python3
"""Capacity planning with the §3 closed forms.

Given a target media type and viewer count, size a staggered-striping
server: drives, per-drive memory (Equation 1), worst-case start-up
latency, fragment size, and the bandwidth headroom a playout buffer
buys (the paper's §5 question).  Everything here is analytic — no
simulation — and cross-checked by the test suite against the
simulator.

Run:  python examples/capacity_planning.py [--streams N] [--mbps B]
"""

from __future__ import annotations

import argparse
import math

from repro.analysis.bandwidth import bandwidth_table
from repro.analysis.latency import worst_case_initiation_delay
from repro.analysis.memory import minimum_memory
from repro.analysis.reporting import format_table
from repro.analysis.seek_buffering import (
    average_overhead_bandwidth,
    buffering_table,
)
from repro.hardware.disk import SABRE_DISK


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--streams", type=int, default=30,
                        help="concurrent displays to support")
    parser.add_argument("--mbps", type=float, default=60.0,
                        help="display bandwidth of the media type")
    parser.add_argument("--fragment-cylinders", type=int, default=2)
    args = parser.parse_args()

    disk = SABRE_DISK
    b_disk = disk.effective_bandwidth(args.fragment_cylinders)
    degree = math.ceil(args.mbps / b_disk)
    num_disks = args.streams * degree
    interval = disk.service_time(args.fragment_cylinders)
    t_sector = 0.032768 / disk.transfer_rate  # 4 KB sectors

    print(f"target: {args.streams} concurrent streams at {args.mbps:g} mbps")
    print(f"drive:  {disk.name} -> B_disk = {b_disk:.2f} mbps at "
          f"{args.fragment_cylinders}-cylinder fragments")
    print()
    rows = [
        {"quantity": "degree of declustering M",
         "value": degree},
        {"quantity": "drives needed (D = streams x M)",
         "value": num_disks},
        {"quantity": "clusters R = D / M",
         "value": num_disks // degree},
        {"quantity": "interval S(C_i)",
         "value": f"{interval * 1000:.1f} ms"},
        {"quantity": "Eq. 1 memory per drive",
         "value": f"{minimum_memory(b_disk, disk.t_switch, t_sector):.3f} mbit"},
        {"quantity": "worst-case start-up latency (simple striping)",
         "value": f"{worst_case_initiation_delay(disk, num_disks, degree, args.fragment_cylinders):.1f} s"},
        {"quantity": "aggregate delivery bandwidth",
         "value": f"{args.streams * args.mbps / 1000:.2f} gbps"},
    ]
    print(format_table(rows))

    print("\nfragment-size trade-off (bandwidth vs start-up latency):\n")
    tradeoff = bandwidth_table(disk, max_cylinders=4)
    for row in tradeoff:
        row["worst_latency_s"] = worst_case_initiation_delay(
            disk, num_disks, degree, int(row["fragment_cylinders"])
        )
    print(format_table(tradeoff))

    print("\nplayout buffering vs effective bandwidth (§5 study):\n")
    buffered = [
        {
            "buffer_cylinders": row.buffer_cylinders,
            "effective_mbps": round(row.effective_bandwidth_mbps, 2),
            "gain_pct": round(row.gain_over_worst_case_pct, 2),
        }
        for row in buffering_table(disk, activations=10_000,
                                   fragment_cylinders=args.fragment_cylinders)
    ]
    print(format_table(buffered))
    ceiling = average_overhead_bandwidth(disk, args.fragment_cylinders)
    print(f"\naverage-overhead ceiling: {ceiling:.2f} mbps — a one-cylinder "
          f"buffer recovers most of the gap, which can shave a drive per "
          f"{int(b_disk / max(ceiling - b_disk, 1e-9))} streams.")


if __name__ == "__main__":
    main()
