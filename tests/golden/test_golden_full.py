"""Pin the paper-scale transcripts as golden JSON fixtures.

``figure8_full_output.txt`` and ``table4_tertiary_output.txt`` are the
checked-in full-scale (scale 1) runs — too slow to rerun in CI, so the
fixtures pin the parsed transcripts instead.  If either transcript is
regenerated, refresh with ``pytest --update-goldens``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from tests.golden.parsers import parse_figure8_output, parse_table4_output

REPO_ROOT = Path(__file__).resolve().parents[2]
FIGURE8_TXT = REPO_ROOT / "figure8_full_output.txt"
TABLE4_TXT = REPO_ROOT / "table4_tertiary_output.txt"


def _require(path: Path) -> str:
    if not path.exists():
        pytest.skip(f"{path.name} not present")
    return path.read_text()


def test_figure8_full_scale_golden(golden):
    rows = parse_figure8_output(_require(FIGURE8_TXT))
    # 3 access-skew curves x 2 techniques x 9 station counts.
    assert len(rows) == 54
    golden("figure8_full", rows)


def test_table4_full_scale_golden(golden):
    rows = parse_table4_output(_require(TABLE4_TXT))
    assert [row["stations"] for row in rows] == [16, 64, 128, 256]
    golden("table4_full", rows)


def test_figure8_parser_shape():
    """The parser emits exactly the figure8_rows() schema."""
    rows = parse_figure8_output(_require(FIGURE8_TXT))
    assert set(rows[0]) == {
        "mean", "technique", "stations", "displays_per_hour",
        "hit_rate", "tertiary_util", "latency_s",
    }
    assert {row["technique"] for row in rows} == {"simple", "vdr"}
    assert sorted({row["mean"] for row in rows}) == [10.0, 20.0, 43.5]
