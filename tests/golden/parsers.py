"""Parsers for the pinned full-scale experiment transcripts.

``figure8_full_output.txt`` and ``table4_tertiary_output.txt`` are the
checked-in paper-scale runs.  These parsers turn them into the same
row-dict shape the experiment code produces, so the golden fixtures
can pin both the historical transcripts and fresh scaled runs.
"""

from __future__ import annotations

import re
from typing import Dict, List

_SECTION = re.compile(r"^--- Figure 8: .* \(mean (?P<mean>[\d.]+)\) ---$")


def parse_figure8_output(text: str) -> List[Dict]:
    """Rows from a Figure 8 transcript, in ``figure8_rows()`` shape."""
    rows: List[Dict] = []
    mean = None
    for line in text.splitlines():
        line = line.rstrip()
        match = _SECTION.match(line)
        if match:
            mean = float(match.group("mean"))
            continue
        if mean is None or not line:
            continue
        fields = line.split()
        if fields[0] in ("technique", "---------"):
            continue
        if len(fields) != 6 or not fields[1].isdigit():
            # The transcript may carry trailing non-Figure-8 sections.
            mean = None
            continue
        technique, stations, dph, hit, util, latency = fields
        rows.append(
            {
                "mean": mean,
                "technique": technique,
                "stations": int(stations),
                "displays_per_hour": float(dph),
                "hit_rate": float(hit),
                "tertiary_util": float(util),
                "latency_s": float(latency),
            }
        )
    return rows


def parse_table4_output(text: str) -> List[Dict]:
    """Rows from a Table 4 transcript, in ``run_table4()`` shape."""
    rows: List[Dict] = []
    columns: List[str] = []
    for line in text.splitlines():
        fields = line.split()
        if not fields:
            continue
        if fields[0] == "stations" and len(fields) > 1:
            columns = fields
            continue
        if not columns or fields[0].startswith("-"):
            continue
        if len(fields) != len(columns):
            continue
        row: Dict = {"stations": int(fields[0])}
        for name, value in zip(columns[1:], fields[1:]):
            row[name] = float(value)
        rows.append(row)
    return rows
