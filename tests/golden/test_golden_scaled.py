"""Golden regression on live scaled runs of Figure 8 and Table 4.

These run the real simulator at scale 50 (seconds, not minutes) and
compare the emitted rows byte-for-byte against checked-in fixtures.
The CI matrix sets ``REPRO_EXEC_JOBS`` so the same goldens gate both
the serial and the parallel executor paths — any scheduling- or
caching-induced drift fails here first.
"""

from __future__ import annotations

import os

from repro.exec import ResultCache
from repro.experiments.figure8 import figure8_rows, run_figure8
from repro.experiments.table4 import run_table4

JOBS = int(os.environ.get("REPRO_EXEC_JOBS", "1"))
SCALE = 50


def test_figure8_scale50_golden(golden):
    rows = figure8_rows(run_figure8(scale=SCALE, jobs=JOBS))
    # 3 means x 2 techniques x stations [1, 2, 5].
    assert len(rows) == 18
    golden("figure8_scale50", rows)


def test_table4_scale50_golden(golden):
    rows = run_table4(scale=SCALE, jobs=JOBS)
    golden("table4_scale50", rows)


def test_figure8_scale50_golden_from_warm_cache(tmp_path, golden):
    """Cache-served rows hit the same golden as freshly simulated ones."""
    cache = ResultCache(tmp_path / "cache")
    run_figure8(scale=SCALE, jobs=JOBS, cache=cache)
    assert cache.misses > 0
    rows = figure8_rows(run_figure8(scale=SCALE, jobs=JOBS, cache=cache))
    assert cache.hits >= 18
    golden("figure8_scale50", rows)
