"""The golden-fixture comparison machinery.

``golden("name", rows)`` compares ``rows`` against
``tests/golden/data/name.json`` byte-for-byte (via the executor's
canonical JSON).  Run ``pytest --update-goldens`` to rewrite the
fixtures after an intentional change.  On mismatch, the expected and
actual documents plus a unified diff land in ``golden-diff/`` at the
repository root so CI can upload them as an artifact.
"""

from __future__ import annotations

import difflib
import json
from pathlib import Path

import pytest

from repro.exec import canonical_json

GOLDEN_DATA = Path(__file__).parent / "data"
DIFF_DIR = Path(__file__).resolve().parents[2] / "golden-diff"


def _pretty(document) -> str:
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


@pytest.fixture
def golden(request):
    update = request.config.getoption("--update-goldens")

    def check(name: str, rows) -> None:
        path = GOLDEN_DATA / f"{name}.json"
        actual = json.loads(canonical_json(rows))
        if update:
            GOLDEN_DATA.mkdir(parents=True, exist_ok=True)
            path.write_text(_pretty(actual))
            return
        if not path.exists():
            pytest.fail(
                f"missing golden fixture {path}; "
                "run `pytest --update-goldens` to create it"
            )
        expected = json.loads(path.read_text())
        if canonical_json(expected) == canonical_json(actual):
            return
        DIFF_DIR.mkdir(exist_ok=True)
        expected_text = _pretty(expected)
        actual_text = _pretty(actual)
        (DIFF_DIR / f"{name}.expected.json").write_text(expected_text)
        (DIFF_DIR / f"{name}.actual.json").write_text(actual_text)
        diff = "".join(
            difflib.unified_diff(
                expected_text.splitlines(keepends=True),
                actual_text.splitlines(keepends=True),
                fromfile=f"{name}.expected.json",
                tofile=f"{name}.actual.json",
            )
        )
        (DIFF_DIR / f"{name}.diff").write_text(diff)
        pytest.fail(
            f"golden mismatch for {name!r} "
            f"(diff written to {DIFF_DIR / (name + '.diff')}):\n{diff}"
        )

    return check
