"""Tests for the ``repro bench`` harness: pairing, determinism
enforcement, document schema, and the regression check CI runs."""

from __future__ import annotations

import json

import pytest

from repro import fastpath
from repro.benchmarks import (
    PAIRS,
    SCHEMA,
    SUITES,
    BenchCase,
    BenchError,
    check_regression,
    format_report,
    pair_flags,
    run_suite,
    suite_cases,
    validate_document,
)
from repro.benchmarks.harness import validate_document as _vd  # re-export check
from repro.core import virtual_disks
from repro.core.virtual_disks import SlotPool
from repro.errors import ReproError


def _counting_case(name="count") -> BenchCase:
    def prepare():
        pool = SlotPool(num_disks=8, stride=1)

        def thunk():
            for z in range(8):
                pool.claim(z, "x")
            total = pool.free_half_total
            pool.release_all("x")
            return {"total": total, "free": pool.free_half_total}

        return thunk

    return BenchCase(name=name, prepare=prepare, params={"num_disks": 8})


class TestPairFlags:
    def test_batch_pair_keeps_index_on_in_both_modes(self):
        assert pair_flags("batch", True) == (True, True)
        assert pair_flags("batch", False) == (True, False)

    def test_occ_index_pair_keeps_batch_off_in_both_modes(self):
        assert pair_flags("occ-index", True) == (True, False)
        assert pair_flags("occ-index", False) == (False, False)

    def test_unknown_pair_raises(self):
        with pytest.raises(BenchError, match="unknown bench pair"):
            pair_flags("nope", True)


class TestRunSuite:
    def test_document_shape(self):
        doc = run_suite("unit", [_counting_case()], warmup=0, repeats=2)
        validate_document(doc)  # must not raise
        assert doc["schema"] == SCHEMA
        assert doc["suite"] == "unit"
        assert doc["pair"] == "batch"
        assert doc["repeats"] == 2
        (row,) = doc["cases"]
        assert row["name"] == "count"
        assert row["byte_identical"] is True
        assert row["speedup"] > 0
        assert len(row["fast"]["times_s"]) == 2
        assert row["fast"]["digest"] == row["reference"]["digest"]

    def test_document_is_json_round_trippable(self):
        doc = run_suite("unit", [_counting_case()], warmup=0, repeats=1)
        validate_document(json.loads(json.dumps(doc)))

    def test_unknown_pair_rejected_up_front(self):
        with pytest.raises(BenchError, match="unknown bench pair"):
            run_suite("unit", [_counting_case()], pair="bogus")

    @pytest.mark.parametrize("pair", PAIRS)
    def test_both_modes_actually_run(self, pair):
        seen = []
        original_occ = virtual_disks.occupancy_index_enabled
        original_batch = fastpath.batch_kernel_enabled

        def prepare():
            seen.append(
                (
                    virtual_disks.occupancy_index_enabled(),
                    fastpath.batch_kernel_enabled(),
                )
            )
            return lambda: {"ok": 1}

        run_suite(
            "unit",
            [BenchCase(name="modes", prepare=prepare)],
            pair=pair,
            warmup=0,
            repeats=1,
        )
        have_numpy = fastpath.numpy_available()
        expected = [
            pair_flags(pair, True),
            pair_flags(pair, False),
        ]
        # The batch switch is additionally gated on numpy availability,
        # so without numpy the fast mode degrades to scalar.
        expected = [
            (occ, batch and have_numpy) for occ, batch in expected
        ]
        assert seen == expected
        # The patches must not leak out of the harness.
        assert virtual_disks.occupancy_index_enabled is original_occ
        assert fastpath.batch_kernel_enabled is original_batch

    def test_nondeterminism_is_an_error(self):
        counter = [0]

        def prepare():
            def thunk():
                counter[0] += 1
                return {"n": counter[0]}

            return thunk

        with pytest.raises(BenchError, match="nondeterministic"):
            run_suite(
                "unit",
                [BenchCase(name="drift", prepare=prepare)],
                warmup=0,
                repeats=2,
            )

    def test_mode_divergence_is_an_error(self):
        def prepare():
            mode = virtual_disks.occupancy_index_enabled()
            return lambda: {"mode": mode}

        with pytest.raises(BenchError, match="diverged"):
            run_suite(
                "unit",
                [BenchCase(name="diverge", prepare=prepare)],
                pair="occ-index",
                warmup=0,
                repeats=1,
            )

    @pytest.mark.skipif(
        not fastpath.numpy_available(), reason="batch pair needs numpy"
    )
    def test_batch_pair_divergence_is_an_error(self):
        def prepare():
            mode = fastpath.batch_kernel_enabled()
            return lambda: {"mode": mode}

        with pytest.raises(BenchError, match="diverged"):
            run_suite(
                "unit",
                [BenchCase(name="diverge", prepare=prepare)],
                pair="batch",
                warmup=0,
                repeats=1,
            )

    def test_format_report_lists_every_case(self):
        doc = run_suite(
            "unit",
            [_counting_case("a"), _counting_case("b")],
            warmup=0,
            repeats=1,
        )
        report = format_report(doc)
        assert "a" in report and "b" in report and "speedup" in report
        assert "pair=batch" in report


class TestValidateDocument:
    def test_rejects_wrong_schema(self):
        with pytest.raises(BenchError, match="schema"):
            validate_document({"schema": "bogus/9", "cases": [{}]})

    def test_rejects_schema_one(self):
        """Old committed baselines must be regenerated, not silently
        reinterpreted."""
        with pytest.raises(BenchError, match="schema"):
            validate_document({"schema": "repro-bench/1", "cases": [{}]})

    def test_rejects_missing_pair(self):
        with pytest.raises(BenchError, match="pair"):
            validate_document({"schema": SCHEMA, "cases": [{}]})

    def test_rejects_missing_cases(self):
        with pytest.raises(BenchError, match="no cases"):
            validate_document({"schema": SCHEMA, "pair": "batch", "cases": []})

    def test_rejects_non_identical_outputs(self):
        doc = run_suite("unit", [_counting_case()], warmup=0, repeats=1)
        doc["cases"][0]["byte_identical"] = False
        with pytest.raises(BenchError, match="non-identical"):
            validate_document(doc)

    def test_reexport_is_the_same_function(self):
        assert _vd is validate_document


class TestCheckRegression:
    def _doc(self, speedup, pair="batch"):
        doc = run_suite(
            "unit", [_counting_case()], pair=pair, warmup=0, repeats=1
        )
        doc["cases"][0]["speedup"] = speedup
        return doc

    def test_no_failure_within_tolerance(self):
        assert check_regression(self._doc(1.6), self._doc(2.0)) == []

    def test_failure_beyond_tolerance(self):
        failures = check_regression(self._doc(1.0), self._doc(2.0))
        assert len(failures) == 1
        assert "1.00x" in failures[0]

    def test_unknown_baseline_case_is_ignored(self):
        current = self._doc(1.0)
        baseline = self._doc(2.0)
        baseline["cases"][0]["name"] = "something-else"
        assert check_regression(current, baseline) == []

    def test_pair_mismatch_is_a_failure(self):
        failures = check_regression(
            self._doc(2.0, pair="batch"), self._doc(2.0, pair="occ-index")
        )
        assert len(failures) == 1
        assert "pair mismatch" in failures[0]


class TestSuiteRegistry:
    def test_known_suites(self):
        assert SUITES == ("core", "admission", "sweep", "batched")

    def test_known_pairs(self):
        assert PAIRS == ("batch", "occ-index")

    @pytest.mark.parametrize("suite", SUITES)
    def test_every_suite_yields_cases(self, suite):
        cases = suite_cases(suite, quick=True)
        assert cases
        for case in cases:
            assert case.name and callable(case.prepare)

    def test_unknown_suite_raises(self):
        with pytest.raises(ReproError, match="unknown bench suite"):
            suite_cases("nope")


class TestSeededRepeatability:
    def test_quick_admission_suite_is_repeatable(self):
        """Two fresh runs of a real suite produce identical digests —
        the underlying workloads are fully seeded."""
        cases = suite_cases("admission", quick=True)
        first = run_suite("admission", cases, quick=True, warmup=0, repeats=1)
        second = run_suite(
            "admission",
            suite_cases("admission", quick=True),
            quick=True,
            warmup=0,
            repeats=1,
        )
        for a, b in zip(first["cases"], second["cases"]):
            assert a["name"] == b["name"]
            assert a["fast"]["digest"] == b["fast"]["digest"]
            assert a["reference"]["digest"] == b["reference"]["digest"]
