"""Tests for the experiment runner."""

from __future__ import annotations

import pytest

from repro.core.scheduler import StaggeredStripingPolicy
from repro.errors import ConfigurationError
from repro.simulation.config import ScaledConfig
from repro.simulation.runner import (
    build_catalog,
    build_engine,
    build_policy,
    preload_ids,
    run_experiment,
    run_sweep,
    sweep_table,
)
from repro.sim.rng import RandomStream
from repro.vdr.scheduler import VirtualReplicationPolicy
from repro.workload.access import GeometricAccess


@pytest.fixture
def config():
    return ScaledConfig(technique="simple", num_stations=4, access_mean=1.0,
                        warmup_intervals=100, measure_intervals=500)


class TestBuilders:
    def test_catalog_matches_config(self, config):
        catalog = build_catalog(config)
        assert len(catalog) == config.num_objects
        assert catalog.get(0).degree == config.degree

    def test_policy_dispatch(self, config):
        assert isinstance(
            build_policy(config, build_catalog(config)), StaggeredStripingPolicy
        )
        vdr = config.with_(technique="vdr")
        assert isinstance(
            build_policy(vdr, build_catalog(vdr)), VirtualReplicationPolicy
        )

    def test_preload_fills_capacity(self, config):
        catalog = build_catalog(config)
        access = GeometricAccess(
            catalog.object_ids, 1.0, RandomStream(1)
        )
        ids = preload_ids(config, access)
        assert len(ids) == config.max_resident_objects
        assert ids[0] == 0  # hottest first

    def test_engine_wiring(self, config):
        engine = build_engine(config)
        assert len(engine.stations) == 4
        assert engine.interval_length == pytest.approx(config.interval_length)


class TestRunners:
    def test_run_experiment_produces_result(self, config):
        result = run_experiment(config)
        assert result.technique == "simple"
        assert result.completed > 0

    def test_run_sweep_varies_field(self, config):
        results = run_sweep(config, "num_stations", [1, 2])
        assert [r.num_stations for r in results] == [1, 2]
        assert results[0].throughput_per_hour <= (
            results[1].throughput_per_hour + 1e-9
        )

    def test_sweep_table_rows(self, config):
        results = run_sweep(config, "num_stations", [1])
        rows = sweep_table(results)
        assert rows[0]["stations"] == 1

    def test_empty_sweep_rejected(self, config):
        with pytest.raises(ConfigurationError):
            run_sweep(config, "num_stations", [])


class TestNoPreload:
    def test_cold_start_still_completes(self):
        config = ScaledConfig(
            technique="simple", num_stations=2, access_mean=1.0,
            preload=False, warmup_intervals=0, measure_intervals=2500,
        )
        result = run_experiment(config)
        # Cold start: everything must come off the tertiary first.
        assert result.completed >= 1
        assert result.policy_stats["tertiary_completed"] >= 1
