"""Tests for the scheduler event log."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.simulation.config import ScaledConfig
from repro.simulation.event_log import EventLog, LogEntry
from repro.simulation.runner import build_catalog, build_policy
from repro.simulation.engine import IntervalEngine
from repro.sim.rng import RandomStream
from repro.workload.access import GeometricAccess
from repro.workload.stations import StationPool


class TestEventLogBasics:
    def test_record_and_query(self):
        log = EventLog()
        log.record(3, "admit", display=1)
        log.record(5, "complete", display=1)
        log.record(5, "evict", object=7)
        assert len(log) == 3
        assert [e.kind for e in log.of_kind("admit")] == ["admit"]
        assert len(log.between(4, 6)) == 2
        assert log.counts() == {"admit": 1, "complete": 1, "evict": 1}
        assert log.tail(1)[0].kind == "evict"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            EventLog().record(0, "exploded")

    def test_capacity_bound_drops_oldest(self):
        log = EventLog(capacity=2)
        for interval in range(4):
            log.record(interval, "admit", n=interval)
        assert len(log) == 2
        assert log.dropped == 2
        assert [e.interval for e in log] == [2, 3]

    def test_entry_str(self):
        entry = LogEntry(interval=4, kind="evict", details={"object": 9})
        assert str(entry) == "[4] evict object=9"

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            EventLog(capacity=0)


def run_logged(technique: str):
    config = ScaledConfig(
        scale=50, technique=technique, num_stations=4, access_mean=0.5,
        warmup_intervals=0, measure_intervals=800, preload=False,
    )
    catalog = build_catalog(config)
    log = EventLog()
    policy = build_policy(config, catalog)
    policy.event_log = log
    stations = StationPool(
        num_stations=4,
        access=GeometricAccess(catalog.object_ids, 0.5, RandomStream(9)),
    )
    engine = IntervalEngine(
        policy=policy, stations=stations,
        interval_length=config.interval_length, technique=technique,
    )
    engine.run(0, 800)
    return log, policy


class TestLoggedRuns:
    def test_staggered_run_logs_lifecycle(self):
        log, policy = run_logged("simple")
        counts = log.counts()
        # Cold start: materialisations happened, then admissions and
        # completions in equal measure.
        assert counts.get("materialize_start", 0) >= 1
        assert counts.get("materialize_done", 0) >= 1
        assert counts.get("admit", 0) == counts.get("complete", 0) + (
            len(policy._active)
        )

    def test_vdr_run_logs_lifecycle(self):
        log, policy = run_logged("vdr")
        counts = log.counts()
        assert counts.get("materialize_start", 0) >= 1
        assert counts.get("admit", 0) >= 1

    def test_admit_entries_carry_latency(self):
        log, _policy = run_logged("simple")
        for entry in log.of_kind("admit"):
            assert entry.details["latency"] >= 0
