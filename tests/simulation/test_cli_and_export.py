"""Tests for the CLI and result export."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigurationError
from repro.simulation.export import read_rows, write_csv, write_json


class TestExport:
    ROWS = [
        {"technique": "simple", "stations": 4, "throughput": 123.4},
        {"technique": "vdr", "stations": 4, "throughput": 88.8, "extra": 1},
    ]

    def test_csv_roundtrip(self, tmp_path):
        path = write_csv(self.ROWS, tmp_path / "out.csv")
        back = read_rows(path)
        assert len(back) == 2
        assert back[0]["technique"] == "simple"
        assert float(back[1]["throughput"]) == pytest.approx(88.8)
        assert back[0]["extra"] == ""  # missing cell left blank

    def test_json_roundtrip(self, tmp_path):
        path = write_json(self.ROWS, tmp_path / "out.json")
        back = read_rows(path)
        assert back == json.loads(path.read_text())
        assert back[0]["throughput"] == pytest.approx(123.4)

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_csv([], tmp_path / "x.csv")
        with pytest.raises(ConfigurationError):
            write_json([], tmp_path / "x.json")

    def test_unknown_format_rejected(self, tmp_path):
        target = tmp_path / "x.yaml"
        target.write_text("")
        with pytest.raises(ConfigurationError):
            read_rows(target)


class TestCLI:
    def test_info_prints_table3_quantities(self, capsys):
        assert main(["info", "--scale", "10"]) == 0
        out = capsys.readouterr().out
        assert "degree of declustering" in out
        assert "clusters (R)" in out

    def test_info_full_scale_numbers(self, capsys):
        main(["info", "--scale", "1"])
        out = capsys.readouterr().out
        assert "1000" in out  # D
        assert "200" in out  # R

    def test_run_command_outputs_summary(self, capsys, tmp_path):
        code = main([
            "run", "--scale", "50", "--technique", "simple",
            "--stations", "2", "--mean", "0.2",
            "--output", str(tmp_path / "run.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput_per_hour" in out
        rows = read_rows(tmp_path / "run.json")
        assert rows[0]["technique"] == "simple"

    def test_sweep_command(self, capsys):
        code = main([
            "sweep", "--scale", "50", "--technique", "simple",
            "--mean", "0.2", "--values", "1", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("simple") >= 2

    def test_table4_command(self, capsys, tmp_path):
        code = main([
            "table4", "--scale", "50", "--values", "2",
            "--output", str(tmp_path / "t4.csv"),
        ])
        assert code == 0
        rows = read_rows(tmp_path / "t4.csv")
        assert rows[0]["stations"] == "2"

    def test_parser_rejects_unknown_technique(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--technique", "raid"])

    def test_uniform_flag(self, capsys):
        code = main([
            "run", "--scale", "50", "--technique", "simple",
            "--stations", "1", "--uniform",
        ])
        assert code == 0
