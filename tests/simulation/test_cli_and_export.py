"""Tests for the CLI and result export."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigurationError
from repro.simulation.export import read_rows, write_csv, write_json


class TestExport:
    ROWS = [
        {"technique": "simple", "stations": 4, "throughput": 123.4},
        {"technique": "vdr", "stations": 4, "throughput": 88.8, "extra": 1},
    ]

    def test_csv_roundtrip(self, tmp_path):
        path = write_csv(self.ROWS, tmp_path / "out.csv")
        back = read_rows(path)
        assert len(back) == 2
        assert back[0]["technique"] == "simple"
        assert float(back[1]["throughput"]) == pytest.approx(88.8)
        assert back[0]["extra"] == ""  # missing cell left blank

    def test_json_roundtrip(self, tmp_path):
        path = write_json(self.ROWS, tmp_path / "out.json")
        back = read_rows(path)
        assert back == json.loads(path.read_text())
        assert back[0]["throughput"] == pytest.approx(123.4)

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_csv([], tmp_path / "x.csv")
        with pytest.raises(ConfigurationError):
            write_json([], tmp_path / "x.json")

    def test_unknown_format_rejected(self, tmp_path):
        target = tmp_path / "x.yaml"
        target.write_text("")
        with pytest.raises(ConfigurationError):
            read_rows(target)


class TestCLI:
    def test_info_prints_table3_quantities(self, capsys):
        assert main(["info", "--scale", "10"]) == 0
        out = capsys.readouterr().out
        assert "degree of declustering" in out
        assert "clusters (R)" in out

    def test_info_full_scale_numbers(self, capsys):
        main(["info", "--scale", "1"])
        out = capsys.readouterr().out
        assert "1000" in out  # D
        assert "200" in out  # R

    def test_run_command_outputs_summary(self, capsys, tmp_path):
        code = main([
            "run", "--scale", "50", "--technique", "simple",
            "--stations", "2", "--mean", "0.2",
            "--output", str(tmp_path / "run.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput_per_hour" in out
        rows = read_rows(tmp_path / "run.json")
        assert rows[0]["technique"] == "simple"

    def test_sweep_command(self, capsys):
        code = main([
            "sweep", "--scale", "50", "--technique", "simple",
            "--mean", "0.2", "--values", "1", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("simple") >= 2

    def test_table4_command(self, capsys, tmp_path):
        code = main([
            "table4", "--scale", "50", "--values", "2",
            "--output", str(tmp_path / "t4.csv"),
        ])
        assert code == 0
        rows = read_rows(tmp_path / "t4.csv")
        assert rows[0]["stations"] == "2"

    def test_parser_rejects_unknown_technique(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--technique", "raid"])

    def test_uniform_flag(self, capsys):
        code = main([
            "run", "--scale", "50", "--technique", "simple",
            "--stations", "1", "--uniform",
        ])
        assert code == 0


class TestFaultCLI:
    def test_run_with_fault_flags_reports_availability(self, capsys):
        code = main([
            "run", "--scale", "50", "--technique", "staggered",
            "--stations", "2", "--mean", "0.2",
            "--fail-at", "3:100", "--mttr", "40",
            "--redundancy", "mirror", "--rebuild-rate", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "faults(" in out  # config.describe() banner
        assert "fault_failures" in out
        assert "fault_rebuilds_completed" in out

    def test_fault_flags_reach_the_config(self):
        parser = build_parser()
        args = parser.parse_args([
            "run", "--fail-at", "3:100", "7:250", "--mttf", "500",
            "--mttr", "50", "--redundancy", "parity",
            "--parity-group", "5", "--on-fault", "abort",
        ])
        from repro.cli import _config

        config = _config(args)
        assert config.fail_at == ((3, 100), (7, 250))
        assert config.mttf == 500.0
        assert config.redundancy == "parity"
        assert config.parity_group == 5
        assert config.on_fault == "abort"
        assert config.faults_enabled

    def test_fault_flags_default_to_disabled(self):
        parser = build_parser()
        from repro.cli import _config

        config = _config(parser.parse_args(["run"]))
        assert not config.faults_enabled

    def test_malformed_fail_at_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--fail-at", "3-100"])

    def test_faults_grid_command(self, capsys, tmp_path):
        code = main([
            "faults", "--scale", "50", "--values", "300",
            "--output", str(tmp_path / "faults.csv"),
        ])
        assert code == 0
        rows = read_rows(tmp_path / "faults.csv")
        assert len(rows) == 9  # 3 techniques x 3 redundancy schemes
        assert {row["technique"] for row in rows} == {
            "simple", "staggered", "vdr"
        }
        assert {row["redundancy"] for row in rows} == {
            "none", "mirror", "parity"
        }


class TestSweepStatus:
    def test_reports_entries_and_size_on_disk(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        code = main([
            "run", "--scale", "50", "--technique", "simple",
            "--stations", "1", "--mean", "0.2",
            "--cache-dir", str(cache_dir),
        ])
        assert code == 0
        capsys.readouterr()
        assert main(["sweep-status", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "(1 entries," in out
        assert "on disk)" in out
        assert "B on disk" in out or "KiB on disk" in out

    def test_empty_cache_reports_zero_bytes(self, capsys, tmp_path):
        assert main(["sweep-status", "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "0 entries, 0 B on disk" in out

    def _write_stream(self, cache_dir, sweep_id):
        import json

        root = cache_dir / "journals"
        root.mkdir(parents=True, exist_ok=True)
        lines = [
            {"event": "sweep_begin", "ts": 1.0, "sweep_id": sweep_id,
             "total": 1, "jobs": 1},
            {"event": "run_settled", "ts": 2.0, "index": 0,
             "digest": "d0", "status": "ok"},
            {"event": "sweep_end", "ts": 3.0, "status": "complete",
             "settled": 1},
        ]
        path = root / f"{sweep_id}.events.jsonl"
        path.write_text(
            "".join(json.dumps(line) + "\n" for line in lines)
        )

    def test_sweep_id_unique_prefix_resolves(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        self._write_stream(cache_dir, "aaaa1111")
        self._write_stream(cache_dir, "bbbb2222")
        code = main(["sweep-status", "aaaa1", "--cache-dir", str(cache_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "aaaa1111" in out

    def test_sweep_id_ambiguous_prefix_lists_candidates(
        self, capsys, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        self._write_stream(cache_dir, "aaaa1111")
        self._write_stream(cache_dir, "aaaa2222")
        code = main(["sweep-status", "aaaa", "--cache-dir", str(cache_dir)])
        err = capsys.readouterr().err
        assert code == 2
        assert "ambiguous" in err
        assert "aaaa1111" in err and "aaaa2222" in err
