"""End-to-end byte-identity of the batched kernel.

The acceptance bar for the whole batched path (lane-table admission,
cohort settle, station heap): running the same configuration with
``REPRO_BATCH_KERNEL`` on and off must produce **byte-identical**
serialized results — across admission modes, queue disciplines, and
fault scenarios, and under ``--sanitize strict`` so every invariant
sweep runs.  ``REPRO_NO_NUMPY=1`` (the fallback a numpy-less install
takes) must land on the same bytes too.
"""

from __future__ import annotations

import json

import pytest

from repro import fastpath, switches
from repro.simulation.config import ScaledConfig
from repro.simulation.runner import build_engine

pytestmark = pytest.mark.skipif(
    not fastpath.numpy_available(), reason="pairing needs numpy"
)


def run_blob(config, batch_on) -> str:
    original = fastpath.batch_kernel_enabled
    fastpath.batch_kernel_enabled = lambda: batch_on
    try:
        engine = build_engine(config)
        result = engine.run(
            warmup_intervals=config.warmup_intervals,
            measure_intervals=config.measure_intervals,
        )
    finally:
        fastpath.batch_kernel_enabled = original
    return json.dumps(result.to_dict(), sort_keys=True)


CASES = {
    "staggered_fragmented": ScaledConfig(scale=100).with_(
        technique="staggered", num_stations=8, sanitize="strict"
    ),
    "simple_contiguous": ScaledConfig(scale=100).with_(
        technique="simple", num_stations=8, sanitize="strict"
    ),
    "staggered_sjf": ScaledConfig(scale=50).with_(
        technique="staggered", num_stations=12, queue_discipline="sjf",
        sanitize="strict",
    ),
    "staggered_largest_first": ScaledConfig(scale=50).with_(
        technique="staggered", num_stations=12,
        queue_discipline="largest_first", sanitize="strict",
    ),
    "fcfs_head_of_line": ScaledConfig(scale=50).with_(
        technique="staggered", num_stations=12, queue_discipline="fcfs",
        sanitize="strict",
    ),
    "faulted_mirror": ScaledConfig(scale=50).with_(
        technique="staggered", num_stations=8, mttf=60.0, mttr=8.0,
        redundancy="mirror", sanitize="strict",
    ),
    "faulted_abort": ScaledConfig(scale=50).with_(
        technique="staggered", num_stations=8, mttf=40.0, mttr=6.0,
        redundancy="none", on_fault="abort", sanitize="strict",
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_batched_run_is_byte_identical_to_scalar(name):
    config = CASES[name]
    assert run_blob(config, True) == run_blob(config, False)


def test_no_numpy_fallback_is_byte_identical(monkeypatch):
    """Masking numpy entirely (the ``[fast]``-less install) routes
    every component to its scalar path and must not move a byte."""
    config = CASES["staggered_fragmented"]
    batched = run_blob(config, True)
    monkeypatch.setenv(switches.NO_NUMPY_ENV, "1")
    assert fastpath.numpy_or_none() is None
    engine = build_engine(config)
    result = engine.run(
        warmup_intervals=config.warmup_intervals,
        measure_intervals=config.measure_intervals,
    )
    assert json.dumps(result.to_dict(), sort_keys=True) == batched


def test_kernel_switch_off_disables_batch_state(monkeypatch):
    monkeypatch.setenv(switches.BATCH_KERNEL_ENV, "off")
    config = CASES["staggered_fragmented"]
    engine = build_engine(config)
    assert engine.policy._batch_index is None


def test_kernel_switch_on_builds_batch_state():
    config = CASES["staggered_fragmented"]
    engine = build_engine(config)
    assert engine.policy._batch_index is not None
