"""Tests for result metrics."""

from __future__ import annotations

import pytest

from repro.simulation.policy import Completion, Request
from repro.simulation.results import SimulationResult, improvement_percent


def make_result(completed=0, interval_length=0.6048, measure=1000):
    return SimulationResult(
        technique="simple",
        num_stations=16,
        access_mean=10.0,
        interval_length=interval_length,
        warmup_intervals=100,
        measure_intervals=measure,
        completed=completed,
    )


def completion(issued=0, start=5, finish=10):
    request = Request(request_id=1, station_id=0, object_id=0, issued_at=issued)
    return Completion(request=request, deliver_start=start, finished_at=finish)


class TestMetrics:
    def test_throughput_per_hour(self):
        result = make_result(completed=100, interval_length=3.6, measure=1000)
        assert result.throughput_per_hour == pytest.approx(100.0)

    def test_record_tracks_latency(self):
        result = make_result()
        result.record(completion(issued=2, start=7))
        assert result.completed == 1
        assert result.latencies_intervals == [5]
        assert result.mean_startup_latency_seconds == pytest.approx(5 * 0.6048)

    def test_max_latency(self):
        result = make_result()
        result.record(completion(issued=0, start=3))
        result.record(completion(issued=0, start=9))
        assert result.max_startup_latency_seconds == pytest.approx(9 * 0.6048)

    def test_empty_latencies_are_zero(self):
        result = make_result()
        assert result.mean_startup_latency_seconds == 0.0
        assert result.max_startup_latency_seconds == 0.0

    def test_summary_includes_policy_stats(self):
        result = make_result(completed=10)
        result.policy_stats = {"hit_rate": 0.97}
        summary = result.summary()
        assert summary["completed"] == 10
        assert summary["hit_rate"] == pytest.approx(0.97)


class TestCompletionProperties:
    def test_latency_and_service(self):
        c = completion(issued=2, start=7, finish=12)
        assert c.startup_latency == 5
        assert c.service_intervals == 6


class TestImprovement:
    def test_table4_metric(self):
        striping = make_result(completed=200)
        vdr = make_result(completed=100)
        assert improvement_percent(striping, vdr) == pytest.approx(100.0)

    def test_zero_baseline(self):
        striping = make_result(completed=10)
        vdr = make_result(completed=0)
        assert improvement_percent(striping, vdr) == float("inf")
        assert improvement_percent(make_result(), vdr) == 0.0
