"""Tests for per-interval utilization tracking."""

from __future__ import annotations

import pytest

from repro.simulation.config import ScaledConfig
from repro.simulation.results import SimulationResult
from repro.simulation.runner import run_experiment


class TestResultAccumulators:
    def test_empty_result_is_zero(self):
        result = SimulationResult(
            technique="simple", num_stations=1, access_mean=None,
            interval_length=1.0, warmup_intervals=0, measure_intervals=1,
            completed=0,
        )
        assert result.mean_concurrent_displays == 0.0
        assert result.mean_busy_fraction == 0.0
        assert result.concurrency_max == 0

    def test_samples_average(self):
        result = SimulationResult(
            technique="simple", num_stations=1, access_mean=None,
            interval_length=1.0, warmup_intervals=0, measure_intervals=3,
            completed=0,
        )
        result.record_utilization(2, 0.5)
        result.record_utilization(4, 1.0)
        assert result.mean_concurrent_displays == pytest.approx(3.0)
        assert result.mean_busy_fraction == pytest.approx(0.75)
        assert result.concurrency_max == 4

    def test_summary_includes_utilization(self):
        result = SimulationResult(
            technique="simple", num_stations=1, access_mean=None,
            interval_length=1.0, warmup_intervals=0, measure_intervals=1,
            completed=0,
        )
        result.record_utilization(3, 0.9)
        summary = result.summary()
        assert summary["mean_concurrent"] == 3.0
        assert summary["mean_busy_fraction"] == pytest.approx(0.9)


class TestEndToEnd:
    def test_saturated_striping_fills_the_array(self):
        config = ScaledConfig(
            technique="simple", num_stations=26, access_mean=1.0,
        )
        result = run_experiment(config)
        # R = 20 concurrent display slots at saturation.
        assert result.concurrency_max == config.num_clusters
        assert result.mean_concurrent_displays > 0.9 * config.num_clusters
        assert result.mean_busy_fraction > 0.9

    def test_light_load_leaves_headroom(self):
        config = ScaledConfig(
            technique="simple", num_stations=2, access_mean=1.0,
        )
        result = run_experiment(config)
        assert result.concurrency_max <= 2
        assert result.mean_busy_fraction < 0.25

    def test_vdr_reports_cluster_utilization(self):
        config = ScaledConfig(
            technique="vdr", num_stations=26, access_mean=1.0,
        )
        result = run_experiment(config)
        assert 0.0 < result.mean_busy_fraction <= 1.0
        assert result.concurrency_max <= config.num_clusters

    def test_concurrency_explains_throughput(self):
        """Little's-law style sanity: throughput ≈ concurrency /
        display time at steady state."""
        config = ScaledConfig(
            technique="simple", num_stations=12, access_mean=1.0,
        )
        result = run_experiment(config)
        predicted = (
            result.mean_concurrent_displays / config.display_time * 3600.0
        )
        assert result.throughput_per_hour == pytest.approx(predicted, rel=0.1)