"""Tests for the interval engine + policy + station integration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.simulation.config import ScaledConfig
from repro.simulation.engine import IntervalEngine
from repro.simulation.runner import build_engine


@pytest.fixture
def engine():
    return build_engine(
        ScaledConfig(technique="simple", num_stations=4, access_mean=1.0,
                     warmup_intervals=0, measure_intervals=600)
    )


class TestStepSemantics:
    def test_first_interval_issues_all_stations(self, engine):
        engine.step()
        assert engine.policy.pending_count() == 4

    def test_completions_restart_stations(self, engine):
        total = 0
        for _ in range(700):
            total += len(engine.step())
        # Closed loop: stations keep cycling, many displays complete.
        assert total >= 4
        assert engine.stations.total_completed() == total

    def test_clock_advances_one_interval_per_step(self, engine):
        for _ in range(5):
            engine.step()
        assert engine.interval == 5


class TestRunWindows:
    def test_warmup_not_counted(self):
        config = ScaledConfig(technique="simple", num_stations=4,
                              access_mean=1.0)
        engine_a = build_engine(config)
        result = engine_a.run(warmup_intervals=400, measure_intervals=600)
        # Same seed, no warmup: more completions counted in the same
        # measure length plus warmup (sanity: warmup strictly excluded).
        assert result.warmup_intervals == 400
        assert result.measure_intervals == 600
        assert result.completed > 0
        assert result.completed == len(result.latencies_intervals)

    def test_throughput_arithmetic(self):
        config = ScaledConfig(technique="simple", num_stations=2,
                              access_mean=1.0)
        engine = build_engine(config)
        result = engine.run(warmup_intervals=0, measure_intervals=1000)
        hours = 1000 * config.interval_length / 3600.0
        assert result.throughput_per_hour == pytest.approx(
            result.completed / hours
        )

    def test_run_validates_windows(self, engine):
        with pytest.raises(ConfigurationError):
            engine.run(warmup_intervals=-1, measure_intervals=10)
        with pytest.raises(ConfigurationError):
            engine.run(warmup_intervals=0, measure_intervals=0)

    def test_interval_length_validated(self, engine):
        with pytest.raises(ConfigurationError):
            IntervalEngine(
                policy=engine.policy,
                stations=engine.stations,
                interval_length=0.0,
            )


class TestDeterminism:
    def test_same_seed_same_result(self):
        config = ScaledConfig(technique="simple", num_stations=8,
                              access_mean=2.0, seed=99)
        a = build_engine(config).run(200, 800)
        b = build_engine(config).run(200, 800)
        assert a.completed == b.completed
        assert a.latencies_intervals == b.latencies_intervals

    def test_different_seed_differs(self):
        base = ScaledConfig(technique="simple", num_stations=8,
                            access_mean=2.0)
        a = build_engine(base.with_(seed=1)).run(200, 800)
        b = build_engine(base.with_(seed=2)).run(200, 800)
        # Throughput may coincide; the latency traces should not.
        assert (
            a.latencies_intervals != b.latencies_intervals
            or a.completed != b.completed
        )
