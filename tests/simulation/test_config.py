"""Tests for the simulation configuration (Table 3)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.simulation.config import PaperConfig, ScaledConfig, SimulationConfig


class TestPaperConfig:
    """Every derived quantity must match Table 3 / §4.1."""

    @pytest.fixture
    def config(self):
        return PaperConfig()

    def test_disk_bandwidth_is_20(self, config):
        assert config.disk_bandwidth == pytest.approx(20.0)

    def test_degree_is_5(self, config):
        assert config.degree == 5

    def test_200_clusters(self, config):
        assert config.num_clusters == 200

    def test_stride_defaults_to_m_for_simple(self, config):
        assert config.effective_stride == 5

    def test_interval_length(self, config):
        assert config.interval_length == pytest.approx(0.6048)

    def test_display_time_is_1814_seconds(self, config):
        assert config.display_time == pytest.approx(1814.4)

    def test_database_is_10x_disk_capacity(self, config):
        assert config.database_size / config.disk_capacity == pytest.approx(10.0)

    def test_200_objects_fit_on_disk(self, config):
        assert config.max_resident_objects == 200

    def test_disk_capacity_is_4_54_gigabytes_each(self, config):
        per_disk = config.disk.capacity / 8 / 1000  # GB
        assert per_disk == pytest.approx(4.536, abs=0.01)


class TestScaledConfig:
    """The scaled config must preserve every ratio (DESIGN.md)."""

    @pytest.fixture
    def scaled(self):
        return ScaledConfig(scale=10)

    def test_same_degree_and_interval(self, scaled):
        paper = PaperConfig()
        assert scaled.degree == paper.degree
        assert scaled.interval_length == pytest.approx(paper.interval_length)
        assert scaled.disk_bandwidth == pytest.approx(paper.disk_bandwidth)

    def test_database_to_disk_ratio_preserved(self, scaled):
        assert scaled.database_size / scaled.disk_capacity == pytest.approx(10.0)

    def test_one_object_per_cluster(self, scaled):
        cluster_capacity = scaled.degree * scaled.disk.capacity
        assert cluster_capacity / scaled.object_size == pytest.approx(1.0)

    def test_resident_count_scales(self, scaled):
        assert scaled.max_resident_objects == 20

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            ScaledConfig(scale=7)

    def test_overrides_apply(self):
        config = ScaledConfig(scale=10, technique="vdr", num_stations=26)
        assert config.technique == "vdr"
        assert config.num_stations == 26


class TestValidation:
    def test_unknown_technique(self):
        with pytest.raises(ConfigurationError):
            PaperConfig(technique="raid")

    def test_simple_requires_divisibility(self):
        with pytest.raises(ConfigurationError):
            PaperConfig(num_disks=999)

    def test_staggered_allows_any_d(self):
        config = PaperConfig(technique="staggered", num_disks=999)
        assert config.num_disks == 999

    def test_fill_factor_bounds(self):
        with pytest.raises(ConfigurationError):
            PaperConfig(fill_factor=0.0)
        with pytest.raises(ConfigurationError):
            PaperConfig(fill_factor=1.5)

    def test_with_returns_modified_copy(self):
        base = PaperConfig()
        other = base.with_(num_stations=64)
        assert other.num_stations == 64
        assert base.num_stations == 16

    def test_describe_mentions_technique(self):
        assert "vdr" in PaperConfig(technique="vdr").describe()
