"""Cross-validation: DES-driven engine == interval-stepped engine."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.simulation.config import ScaledConfig
from repro.simulation.des_engine import DESEngine
from repro.simulation.runner import (
    build_access,
    build_arrivals,
    build_catalog,
    build_policy,
    build_engine,
    preload_ids,
)
from repro.sim.rng import RandomStream


def build_des_engine(config):
    catalog = build_catalog(config)
    stream = RandomStream(seed=config.seed)
    access = build_access(config, catalog, stream.fork(1))
    policy = build_policy(config, catalog)
    if config.preload:
        policy.preload(preload_ids(config, access))
    stations = build_arrivals(config, access, stream)
    return DESEngine(
        policy=policy,
        stations=stations,
        interval_length=config.interval_length,
        technique=config.technique,
        access_mean=config.access_mean,
    )


@pytest.mark.parametrize("technique", ["simple", "staggered", "vdr"])
def test_des_and_interval_engines_agree_exactly(technique):
    """Same seed, same policy, different drivers -> identical results."""
    config = ScaledConfig(
        technique=technique, num_stations=8, access_mean=2.0,
        warmup_intervals=200, measure_intervals=1200,
    )
    interval_result = build_engine(config).run(200, 1200)
    des_result = build_des_engine(config).run(200, 1200)
    assert des_result.completed == interval_result.completed
    assert des_result.latencies_intervals == interval_result.latencies_intervals
    assert des_result.policy_stats == interval_result.policy_stats


@pytest.mark.parametrize("technique", ["simple", "staggered", "vdr"])
def test_des_and_interval_engines_agree_on_open_arrivals(technique):
    """The equivalence claim covers the open workload: same Poisson
    source, deadline bookkeeping, and blocking counts through both
    drivers."""
    config = ScaledConfig(
        technique=technique, access_mean=2.0,
        warmup_intervals=100, measure_intervals=1000,
        arrival="poisson", arrival_rate=0.05,
        zipf_s=0.8, deadline_intervals=25,
    )
    interval_result = build_engine(config).run(100, 1000)
    des_result = build_des_engine(config).run(100, 1000)
    assert interval_result.offered > 0
    assert des_result.completed == interval_result.completed
    assert des_result.latencies_intervals == interval_result.latencies_intervals
    assert des_result.offered == interval_result.offered
    assert des_result.blocked == interval_result.blocked
    assert des_result.policy_stats == interval_result.policy_stats


def test_des_engine_advances_simulated_seconds():
    config = ScaledConfig(
        technique="simple", num_stations=2, access_mean=1.0,
    )
    engine = build_des_engine(config)
    engine.run(0, 100)
    assert engine.sim.now == pytest.approx(100 * config.interval_length)
    assert engine.interval == 100


def test_des_engine_validates_windows():
    config = ScaledConfig(technique="simple", num_stations=1)
    engine = build_des_engine(config)
    with pytest.raises(ConfigurationError):
        engine.run(-1, 10)
    with pytest.raises(ConfigurationError):
        engine.run(0, 0)
