"""Tests for tertiary tape layouts (§3.2.4)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hardware.tertiary import TertiaryDevice
from repro.media.tape_layout import (
    TapeLayout,
    TapeOrder,
    materialization_write_degree,
    recording_schedule,
)
from tests.conftest import make_object


@pytest.fixture
def device():
    return TertiaryDevice(bandwidth=40.0, reposition_time=5.0)


class TestCosts:
    def test_fragment_ordered_single_reposition(self, device):
        obj = make_object(num_subobjects=100, degree=4, fragment_size=10.0)
        layout = TapeLayout(TapeOrder.FRAGMENT_ORDERED)
        assert layout.repositions(obj) == 1
        assert layout.service_time(obj, device) == pytest.approx(
            5.0 + obj.size / 40.0
        )

    def test_sequential_repositions_per_subobject(self, device):
        obj = make_object(num_subobjects=100, degree=4, fragment_size=10.0)
        layout = TapeLayout(TapeOrder.SEQUENTIAL)
        assert layout.repositions(obj) == 100
        assert layout.service_time(obj, device) == pytest.approx(
            100 * 5.0 + obj.size / 40.0
        )

    def test_sequential_wastes_major_fraction(self, device):
        """The paper: sequential layouts make the tertiary spend 'a
        major fraction of its time repositioning its head'."""
        obj = make_object(num_subobjects=100, degree=2, fragment_size=10.0)
        sequential = TapeLayout(TapeOrder.SEQUENTIAL)
        ordered = TapeLayout(TapeOrder.FRAGMENT_ORDERED)
        assert sequential.wasted_fraction(obj, device) > 0.5
        assert ordered.wasted_fraction(obj, device) < 0.1

    def test_effective_bandwidth_ordering(self, device):
        obj = make_object(num_subobjects=50, degree=2, fragment_size=10.0)
        sequential = TapeLayout(TapeOrder.SEQUENTIAL)
        ordered = TapeLayout(TapeOrder.FRAGMENT_ORDERED)
        assert ordered.effective_bandwidth(obj, device) > sequential.effective_bandwidth(
            obj, device
        )


class TestWriteDegree:
    def test_paper_values(self):
        # 40 mbps tertiary over 20 mbps drives -> 2 drives per interval.
        assert materialization_write_degree(40.0, 20.0) == 2
        assert materialization_write_degree(20.0, 20.0) == 1
        assert materialization_write_degree(30.0, 20.0) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            materialization_write_degree(0.0, 20.0)


class TestRecordingSchedule:
    def test_batches_follow_paper_example(self):
        """§3.2.4: X_{0.0},X_{0.1} then X_{1.0},X_{1.1} ... (M=2, W=2)."""
        obj = make_object(num_subobjects=3, degree=2, fragment_size=10.0)
        batches = recording_schedule(obj, write_degree=2)
        assert len(batches) == 3
        assert [(a.subobject, a.fragment) for a in batches[0]] == [(0, 0), (0, 1)]
        assert [(a.subobject, a.fragment) for a in batches[1]] == [(1, 0), (1, 1)]

    def test_partial_final_batch(self):
        obj = make_object(num_subobjects=1, degree=3, fragment_size=10.0)
        batches = recording_schedule(obj, write_degree=2)
        assert [len(b) for b in batches] == [2, 1]

    def test_every_fragment_written_once(self):
        obj = make_object(num_subobjects=4, degree=3, fragment_size=10.0)
        batches = recording_schedule(obj, write_degree=2)
        written = [address for batch in batches for address in batch]
        assert len(written) == len(set(written)) == obj.num_fragments

    def test_validation(self):
        obj = make_object()
        with pytest.raises(ConfigurationError):
            recording_schedule(obj, write_degree=0)
