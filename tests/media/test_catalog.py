"""Tests for the object catalog."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.media.catalog import Catalog, build_mixed_catalog, build_uniform_catalog
from repro.media.objects import MediaType
from tests.conftest import make_object


class TestCatalog:
    def test_lookup_and_membership(self):
        catalog = Catalog([make_object(0), make_object(1)])
        assert len(catalog) == 2
        assert 1 in catalog
        assert 5 not in catalog
        assert catalog.get(1).object_id == 1

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            Catalog([make_object(0), make_object(0)])

    def test_total_size(self):
        catalog = Catalog([make_object(0, num_subobjects=2, degree=2,
                                       fragment_size=10.0)])
        assert catalog.total_size == pytest.approx(40.0)

    def test_media_types_deduplicated(self):
        catalog = Catalog([make_object(0), make_object(1)])
        assert len(catalog.media_types()) == 1

    def test_iteration_order(self):
        catalog = Catalog([make_object(3), make_object(1)])
        assert [o.object_id for o in catalog] == [3, 1]
        assert catalog.object_ids == [3, 1]


class TestUniformCatalog:
    def test_paper_database(self):
        media = MediaType("video", 100.0)
        catalog = build_uniform_catalog(
            num_objects=2000,
            media_type=media,
            num_subobjects=3000,
            degree=5,
            fragment_size=12.096,
        )
        assert len(catalog) == 2000
        obj = catalog.get(0)
        assert obj.num_subobjects == 3000
        assert obj.degree == 5
        # Database is ~10x the 1000-drive array's 4.54 GB capacity.
        array_capacity = 1000 * 3000 * 12.096
        assert catalog.total_size / array_capacity == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_uniform_catalog(0, MediaType("v", 1.0), 1, 1, 1.0)


class TestMixedCatalog:
    def test_degrees_derived_from_disk_bandwidth(self):
        catalog = build_mixed_catalog(
            specs=[
                {"name": "Z", "display_bandwidth": 40.0, "num_subobjects": 5},
                {"name": "X", "display_bandwidth": 60.0, "num_subobjects": 5},
                {"name": "Y", "display_bandwidth": 80.0, "num_subobjects": 5,
                 "count": 2},
            ],
            fragment_size=12.096,
            disk_bandwidth=20.0,
        )
        degrees = [obj.degree for obj in catalog]
        assert degrees == [2, 3, 4, 4]

    def test_max_degree(self):
        catalog = build_mixed_catalog(
            specs=[
                {"name": "a", "display_bandwidth": 20.0, "num_subobjects": 2},
                {"name": "b", "display_bandwidth": 95.0, "num_subobjects": 2},
            ],
            fragment_size=1.0,
            disk_bandwidth=20.0,
        )
        assert catalog.max_degree() == 5
