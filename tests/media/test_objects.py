"""Tests for media types, objects, and fragment addressing."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.media.objects import FragmentAddress, MediaObject, MediaType
from tests.conftest import make_object


class TestMediaType:
    def test_degree_of_declustering_examples(self):
        """The paper's M = ceil(B_display / B_disk) examples."""
        assert MediaType("X", 60.0).degree_of_declustering(20.0) == 3
        assert MediaType("Y", 120.0).degree_of_declustering(20.0) == 6
        assert MediaType("Z", 40.0).degree_of_declustering(20.0) == 2
        assert MediaType("table3", 100.0).degree_of_declustering(20.0) == 5

    def test_degree_rounds_up_for_fractional(self):
        assert MediaType("odd", 30.0).degree_of_declustering(20.0) == 2

    def test_low_bandwidth_needs_one_disk(self):
        assert MediaType("audio", 1.5).degree_of_declustering(20.0) == 1

    def test_logical_degree_in_half_disks(self):
        assert MediaType("half", 10.0).logical_degree(20.0) == 1
        assert MediaType("x15", 30.0).logical_degree(20.0) == 3
        assert MediaType("full", 100.0).logical_degree(20.0) == 10

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MediaType("bad", 0.0)
        with pytest.raises(ConfigurationError):
            MediaType("x", 10.0).degree_of_declustering(0.0)


class TestMediaObject:
    def test_sizes(self):
        obj = make_object(num_subobjects=10, degree=4, fragment_size=12.0)
        assert obj.subobject_size == pytest.approx(48.0)
        assert obj.size == pytest.approx(480.0)
        assert obj.num_fragments == 40

    def test_display_time(self):
        obj = make_object(bandwidth=60.0, num_subobjects=10, degree=3,
                          fragment_size=12.0)
        assert obj.display_time == pytest.approx(360.0 / 60.0)

    def test_paper_object_displays_1814_seconds(self, table3):
        obj = make_object(
            bandwidth=100.0,
            num_subobjects=3000,
            degree=5,
            fragment_size=table3.cylinder_capacity,
        )
        assert obj.display_time == pytest.approx(1814.4)

    def test_fragments_enumerate_subobject_major(self):
        obj = make_object(num_subobjects=2, degree=2)
        addresses = list(obj.fragments())
        assert addresses == [
            FragmentAddress(0, 0, 0),
            FragmentAddress(0, 0, 1),
            FragmentAddress(0, 1, 0),
            FragmentAddress(0, 1, 1),
        ]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_object(num_subobjects=0)
        with pytest.raises(ConfigurationError):
            make_object(degree=0)
        with pytest.raises(ConfigurationError):
            make_object(fragment_size=0.0)


class TestFragmentAddress:
    def test_ordering_is_subobject_major(self):
        a = FragmentAddress(0, 1, 2)
        b = FragmentAddress(0, 2, 0)
        assert a < b

    def test_str(self):
        assert str(FragmentAddress(7, 2, 1)) == "7:2.1"

    def test_hashable(self):
        assert len({FragmentAddress(0, 0, 0), FragmentAddress(0, 0, 0)}) == 1
