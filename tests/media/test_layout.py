"""Tests for striping layouts against the paper's figures."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError, LayoutError
from repro.media.layout import (
    StripingLayout,
    render_layout,
    simple_striping_layout,
    staggered_layout,
    virtual_replication_layout,
)
from repro.media.objects import FragmentAddress
from tests.conftest import make_object


class TestFigure1SimpleStriping:
    """Figure 1: X (M=3) over 9 drives, clusters used round-robin."""

    @pytest.fixture
    def layout(self):
        layout = simple_striping_layout(num_disks=9, degree=3)
        layout.place(make_object(num_subobjects=6, degree=3), start_disk=0)
        return layout

    def test_subobject_zero_on_cluster_zero(self, layout):
        assert layout.subobject_disks(0, 0) == [0, 1, 2]

    def test_subobject_one_on_cluster_one(self, layout):
        assert layout.subobject_disks(0, 1) == [3, 4, 5]

    def test_round_robin_wraps(self, layout):
        assert layout.subobject_disks(0, 3) == [0, 1, 2]

    def test_simple_striping_requires_divisibility(self):
        with pytest.raises(ConfigurationError):
            simple_striping_layout(num_disks=10, degree=3)


class TestFigure4Staggered:
    """Figure 4: X (M=3) over 8 drives with stride 1."""

    @pytest.fixture
    def layout(self):
        layout = staggered_layout(num_disks=8, stride=1)
        layout.place(make_object(num_subobjects=10, degree=3), start_disk=0)
        return layout

    def test_consecutive_subobjects_shift_by_one(self, layout):
        for i in range(9):
            first_i = layout.disk_of(FragmentAddress(0, i, 0))
            first_next = layout.disk_of(FragmentAddress(0, i + 1, 0))
            assert first_next == (first_i + 1) % 8

    def test_fragments_occupy_consecutive_disks(self, layout):
        for i in range(10):
            disks = layout.subobject_disks(0, i)
            for j in range(1, 3):
                assert disks[j] == (disks[0] + j) % 8


class TestFigure5MixedMedia:
    """Figure 5: Y (M=4) at drive 0, X (M=3) at 4, Z (M=2) at 7; D=12."""

    @pytest.fixture
    def layout(self):
        layout = staggered_layout(num_disks=12, stride=1)
        layout.place(make_object(1, bandwidth=80.0, num_subobjects=13, degree=4), 0)
        layout.place(make_object(2, bandwidth=60.0, num_subobjects=13, degree=3), 4)
        layout.place(make_object(3, bandwidth=40.0, num_subobjects=13, degree=2), 7)
        return layout

    def test_row_zero_matches_paper(self, layout):
        grid = render_layout(layout, [1, 2, 3], {1: "Y", 2: "X", 3: "Z"}, 1)
        assert grid[0] == [
            "Y0.0", "Y0.1", "Y0.2", "Y0.3",
            "X0.0", "X0.1", "X0.2",
            "Z0.0", "Z0.1",
            "", "", "",
        ]

    def test_row_four_wraps_like_paper(self, layout):
        """Paper row 4: Z4.1 on drive 0, Y4 on 4-7, X4 on 8-10, Z4.0 on 11."""
        grid = render_layout(layout, [1, 2, 3], {1: "Y", 2: "X", 3: "Z"}, 5)
        row = grid[4]
        assert row[0] == "Z4.1"
        assert row[4:8] == ["Y4.0", "Y4.1", "Y4.2", "Y4.3"]
        assert row[8:11] == ["X4.0", "X4.1", "X4.2"]
        assert row[11] == "Z4.0"

    def test_no_collisions_in_thirteen_rows(self, layout):
        render_layout(layout, [1, 2, 3], {1: "Y", 2: "X", 3: "Z"}, 13)


class TestVirtualReplicationPlacement:
    def test_all_subobjects_on_same_disks(self):
        layout = virtual_replication_layout(num_disks=10)
        layout.place(make_object(num_subobjects=8, degree=4), start_disk=2)
        for i in range(8):
            assert layout.subobject_disks(0, i) == [2, 3, 4, 5]

    def test_disks_used_equals_degree(self):
        layout = virtual_replication_layout(num_disks=10)
        layout.place(make_object(num_subobjects=8, degree=4), start_disk=0)
        assert layout.disks_used(0) == 4


class TestSection322Arithmetic:
    def test_disks_used_with_k1_matches_paper(self):
        """D=100, 25 subobjects, M=4, k=1 -> 28 drives."""
        layout = staggered_layout(num_disks=100, stride=1)
        layout.place(make_object(num_subobjects=25, degree=4), start_disk=0)
        assert layout.disks_used(0) == 28

    def test_disks_used_with_k_equals_m_spreads_fully(self):
        layout = StripingLayout(num_disks=100, stride=4)
        layout.place(make_object(num_subobjects=25, degree=4), start_disk=0)
        assert layout.disks_used(0) == 100

    def test_residue_classes(self):
        assert StripingLayout(10, 4).residue_classes() == 5
        assert StripingLayout(10, 3).residue_classes() == 10
        assert StripingLayout(10, 10).residue_classes() == 1

    def test_skew_free_count_rule(self):
        layout = StripingLayout(num_disks=10, stride=4)  # gcd 2, classes 5
        assert layout.is_skew_free_count(5)
        assert layout.is_skew_free_count(10)
        assert not layout.is_skew_free_count(7)

    def test_stride_one_has_zero_skew_for_multiples_of_d(self):
        layout = staggered_layout(num_disks=10, stride=1)
        layout.place(make_object(num_subobjects=20, degree=3), start_disk=0)
        assert layout.skew(0) == 0.0

    def test_balanced_counts_with_coprime_stride(self):
        layout = StripingLayout(num_disks=10, stride=3)
        layout.place(make_object(num_subobjects=10, degree=2), start_disk=0)
        counts = layout.fragment_counts(0)
        assert max(counts) - min(counts) == 0


class TestPlacementManagement:
    def test_double_placement_rejected(self):
        layout = staggered_layout(8)
        obj = make_object(degree=2)
        layout.place(obj, 0)
        with pytest.raises(LayoutError):
            layout.place(obj, 3)

    def test_remove_then_replace(self):
        layout = staggered_layout(8)
        obj = make_object(degree=2)
        layout.place(obj, 0)
        layout.remove(0)
        assert not layout.is_placed(0)
        layout.place(obj, 5)
        assert layout.start_disk(0) == 5

    def test_degree_larger_than_d_rejected(self):
        layout = staggered_layout(2)
        with pytest.raises(LayoutError):
            layout.place(make_object(degree=3), 0)

    def test_out_of_range_addresses_rejected(self):
        layout = staggered_layout(8)
        layout.place(make_object(num_subobjects=2, degree=2), 0)
        with pytest.raises(LayoutError):
            layout.disk_of(FragmentAddress(0, 2, 0))
        with pytest.raises(LayoutError):
            layout.disk_of(FragmentAddress(0, 0, 2))
        with pytest.raises(LayoutError):
            layout.disk_of(FragmentAddress(99, 0, 0))

    def test_total_fragment_counts_sums_objects(self):
        layout = staggered_layout(6, stride=1)
        layout.place(make_object(0, num_subobjects=6, degree=2), 0)
        layout.place(make_object(1, num_subobjects=6, degree=2), 3)
        total = layout.total_fragment_counts()
        assert sum(total) == 2 * 6 * 2

    def test_stride_bounds(self):
        with pytest.raises(ConfigurationError):
            StripingLayout(num_disks=8, stride=0)
        with pytest.raises(ConfigurationError):
            StripingLayout(num_disks=8, stride=9)
