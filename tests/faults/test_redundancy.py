"""Tests for the redundancy schemes (who serves a degraded read)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults import mirror_partner, parity_group_members, survivors_of


class TestMirror:
    def test_partners_pair_up(self):
        assert mirror_partner(0) == 1
        assert mirror_partner(1) == 0
        assert mirror_partner(6) == 7
        assert mirror_partner(7) == 6

    def test_survivor_is_the_partner(self):
        assert survivors_of(4, "mirror", num_disks=8) == [5]

    def test_dead_partner_unrecoverable(self):
        down = {5}
        assert survivors_of(4, "mirror", 8, is_failed=down.__contains__) is None

    def test_partner_beyond_array_unrecoverable(self):
        # Odd-width array: the last drive has no pair-mate.
        assert survivors_of(6, "mirror", num_disks=7) is None


class TestParity:
    def test_groups_are_consecutive(self):
        assert parity_group_members(0, 4, 20) == [0, 1, 2, 3]
        assert parity_group_members(6, 4, 20) == [4, 5, 6, 7]

    def test_trailing_group_may_be_short(self):
        assert parity_group_members(9, 4, 10) == [8, 9]

    def test_group_size_validated(self):
        with pytest.raises(ConfigurationError):
            parity_group_members(0, 1, 10)

    def test_survivors_are_the_other_members(self):
        assert survivors_of(5, "parity", 20, parity_group=4) == [4, 6, 7]

    def test_second_group_failure_unrecoverable(self):
        down = {7}
        assert (
            survivors_of(5, "parity", 20, parity_group=4,
                         is_failed=down.__contains__)
            is None
        )

    def test_failure_outside_group_harmless(self):
        down = {11}
        assert survivors_of(
            5, "parity", 20, parity_group=4, is_failed=down.__contains__
        ) == [4, 6, 7]

    def test_singleton_group_unrecoverable(self):
        # 9 drives in groups of 4: drive 8 is alone in its group.
        assert survivors_of(8, "parity", 9, parity_group=4) is None


class TestScheme:
    def test_none_never_recovers(self):
        assert survivors_of(3, "none", 20) is None

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            survivors_of(3, "raid6", 20)
