"""Scenario tests for degraded-mode service and online rebuild.

Each test runs a full scaled simulation with a scripted single-drive
failure (``fail_at=((3, 100),)``, repaired after ~40 intervals) and
asserts over the availability metrics the coordinators thread into
``policy_stats``.  Loads are deliberately partial (2 of the array's
stations): rebuild and reconstruction compete for leftover interval
bandwidth, and a saturated array leaves none.
"""

from __future__ import annotations

import pytest

from repro.obs import Observability
from repro.simulation.config import ScaledConfig
from repro.simulation.runner import run_experiment


SCENARIO = dict(
    access_mean=0.2,
    num_stations=2,
    fail_at=((3, 100),),
    mttr=40.0,
    rebuild_rate=2,
)


def scenario_config(**overrides):
    return ScaledConfig(scale=50).with_(**{**SCENARIO, **overrides})


def fault_stats(config):
    result = run_experiment(config)
    assert result.completed > 0  # the system keeps serving throughout
    return result, result.policy_stats


class TestStripingDegradedMode:
    def test_scripted_failure_repairs_and_rebuilds_cleanly(self):
        _, stats = fault_stats(scenario_config(technique="staggered"))
        assert stats["fault_failures"] == 1.0
        assert stats["fault_repairs"] == 1.0
        assert stats["fault_rebuilds_completed"] == 1.0
        assert stats["fault_rebuild_intervals"] > 0
        assert stats["fault_mean_rebuild_intervals"] > 40.0  # repair + rebuild
        assert stats["fault_degraded_intervals"] > 0
        assert stats["fault_effective_bandwidth"] < 1.0

    def test_no_redundancy_reads_become_hiccups(self):
        _, stats = fault_stats(scenario_config(technique="staggered"))
        assert stats["fault_reconstructions"] == 0.0
        assert stats["fault_hiccups"] > 0
        assert stats["fault_aborts"] == 0.0
        assert stats["fault_hiccups_per_failure"] == stats["fault_hiccups"]

    def test_mirror_reconstruction_absorbs_some_reads(self):
        plain = fault_stats(scenario_config(technique="staggered"))[1]
        mirrored = fault_stats(
            scenario_config(technique="staggered", redundancy="mirror")
        )[1]
        assert mirrored["fault_reconstructions"] > 0
        # Every reconstructed read is a hiccup the viewer never saw.
        assert mirrored["fault_hiccups"] == (
            plain["fault_hiccups"] - mirrored["fault_reconstructions"]
        )

    def test_abort_policy_requeues_and_keeps_serving(self):
        result, stats = fault_stats(
            scenario_config(technique="staggered", on_fault="abort")
        )
        assert stats["fault_aborts"] > 0
        assert stats["fault_hiccups"] == 0.0
        # The aborted displays' requests re-entered the queue: the
        # closed-loop stations never stall and the run still completes
        # displays afterwards.
        assert result.throughput_per_hour > 0

    def test_parity_with_saturated_survivors_falls_back_to_hiccups(self):
        """Simple striping reads at full bandwidth, so the parity
        group's survivors have no spare half-slots — redundancy only
        pays when the survivors do."""
        _, stats = fault_stats(
            scenario_config(technique="simple", redundancy="parity")
        )
        assert stats["fault_failures"] == 1.0
        assert stats["fault_reconstructions"] == 0.0
        assert stats["fault_hiccups"] > 0

    def test_identical_configs_identical_fault_stats(self):
        config = scenario_config(technique="staggered", redundancy="mirror")
        first = run_experiment(config).policy_stats
        second = run_experiment(config).policy_stats
        assert first == second


class TestVdrDegradedMode:
    def test_no_redundancy_cluster_limps_hiccuping(self):
        _, stats = fault_stats(scenario_config(technique="vdr"))
        assert stats["fault_failures"] == 1.0
        assert stats["fault_repairs"] == 1.0
        assert stats["fault_hiccups"] > 0
        assert stats["fault_reconstructions"] == 0.0

    def test_mirror_cluster_keeps_serving_without_hiccups(self):
        _, stats = fault_stats(
            scenario_config(technique="vdr", redundancy="mirror")
        )
        assert stats["fault_reconstructions"] > 0
        assert stats["fault_hiccups"] == 0.0
        # Redundancy held, so the repaired drive's fragments rebuild
        # (yielding to displays; under load it may still be going).
        assert stats["fault_rebuild_intervals"] > 0

    def test_abort_policy_cancels_the_active_display(self):
        _, stats = fault_stats(
            scenario_config(technique="vdr", on_fault="abort")
        )
        assert stats["fault_aborts"] >= 1.0
        assert stats["fault_hiccups"] == 0.0


class TestGating:
    def test_fault_free_run_reports_no_fault_stats(self):
        config = ScaledConfig(scale=50).with_(access_mean=0.2, num_stations=2)
        assert not config.faults_enabled
        result = run_experiment(config)
        assert not any(k.startswith("fault_") for k in result.policy_stats)

    def test_fault_run_reports_every_metric(self):
        _, stats = fault_stats(scenario_config(technique="staggered"))
        expected = {
            "fault_failures", "fault_repairs", "fault_hiccups",
            "fault_aborts", "fault_reconstructions",
            "fault_background_disruptions", "fault_degraded_intervals",
            "fault_rebuild_intervals", "fault_rebuilds_completed",
            "fault_mean_rebuild_intervals", "fault_hiccups_per_failure",
            "fault_effective_bandwidth",
        }
        assert expected <= set(stats)

    @pytest.mark.parametrize("technique", ["simple", "staggered", "vdr"])
    def test_observability_carries_fault_counters(self, technique):
        obs = Observability(level="metrics")
        result = run_experiment(scenario_config(technique=technique), obs=obs)
        metrics = result.observation["metrics"]
        assert metrics["faults.failures"]["value"] == 1.0
        assert "faults.degraded_intervals" in metrics
        assert "faults.rebuilds_completed" in metrics
