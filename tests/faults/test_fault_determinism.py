"""Fault scenarios obey the executor's byte-identity contract, and
fault-differing sweeps never share cache entries.

The first half mirrors tests/exec/test_determinism.py for a sweep with
fault injection enabled: ``--jobs 1``, ``--jobs 4``, and a warm-cache
pass must produce byte-identical serialized rows.  The second half is
the cache-isolation regression: a sweep differing from another *only*
in its fault configuration must hash to disjoint digests, so a cached
fault-free result can never be served for a faulty run (or vice
versa).
"""

from __future__ import annotations

import os

from repro.exec import (
    ResultCache,
    canonical_json,
    execute,
    experiment_spec,
    spec_digest,
)
from repro.simulation.config import ScaledConfig

PARALLEL_JOBS = int(os.environ.get("REPRO_EXEC_JOBS", "4"))


def base_config():
    return ScaledConfig(scale=50).with_(access_mean=0.2, num_stations=2)


def fault_specs():
    """A heterogeneous faulty sweep: scripted and stochastic failures
    across all three techniques and both redundancy families."""
    base = base_config().with_(fail_at=((3, 100),), mttr=40.0, rebuild_rate=2)
    return [
        experiment_spec(base.with_(technique="staggered", redundancy="mirror")),
        experiment_spec(base.with_(technique="staggered", on_fault="abort")),
        experiment_spec(base.with_(technique="simple", redundancy="parity")),
        experiment_spec(base.with_(technique="vdr")),
        experiment_spec(
            base_config().with_(technique="staggered", mttf=300.0, mttr=30.0)
        ),
    ]


def rows_bytes(records) -> str:
    assert all(record.ok for record in records)
    return canonical_json([record.payload for record in records])


class TestFaultSweepByteIdentity:
    def test_serial_parallel_and_cache_identical(self, tmp_path):
        specs = fault_specs()
        serial = rows_bytes(execute(specs, jobs=1))
        parallel = rows_bytes(execute(specs, jobs=PARALLEL_JOBS))
        assert parallel == serial

        cache = ResultCache(tmp_path / "cache")
        cold = rows_bytes(execute(specs, jobs=PARALLEL_JOBS, cache=cache))
        warm_records = execute(specs, jobs=PARALLEL_JOBS, cache=cache)
        assert cold == serial
        assert rows_bytes(warm_records) == serial
        assert all(record.cached for record in warm_records)

    def test_fault_stats_survive_the_cache_round_trip(self, tmp_path):
        spec = fault_specs()[0]
        cache = ResultCache(tmp_path / "cache")
        live = execute([spec], jobs=1, cache=cache)[0].result()
        warm = execute([spec], jobs=1, cache=cache)[0].result()
        assert live.policy_stats["fault_failures"] == 1.0
        assert warm.policy_stats == live.policy_stats


class TestFaultConfigCacheIsolation:
    #: Single fault-field deltas, each a valid config on its own.
    FAULT_DELTAS = [
        {"mttf": 500.0},
        {"mttf": 500.0, "mttr": 50.0},
        {"fail_at": ((3, 100),)},
        {"fail_at": ((3, 100),), "redundancy": "mirror"},
        {"fail_at": ((3, 100),), "redundancy": "parity", "parity_group": 5},
        {"fail_at": ((3, 100),), "rebuild_rate": 2},
        {"fail_at": ((3, 100),), "on_fault": "abort"},
    ]

    def test_fault_deltas_hash_disjoint(self):
        """Every fault variant gets its own digest — including against
        the fault-free base."""
        digests = [spec_digest(experiment_spec(base_config()))]
        digests += [
            spec_digest(experiment_spec(base_config().with_(**delta)))
            for delta in self.FAULT_DELTAS
        ]
        assert len(set(digests)) == len(digests)

    def test_sweeps_differing_only_in_faults_never_share_entries(self, tmp_path):
        """The regression proper: run a fault-free sweep and its faulty
        twin through one cache; neither may hit the other's entries."""
        stations = (1, 2)
        plain = [
            experiment_spec(base_config().with_(num_stations=n))
            for n in stations
        ]
        faulty = [
            experiment_spec(
                base_config().with_(num_stations=n, fail_at=((3, 100),),
                                    mttr=40.0)
            )
            for n in stations
        ]
        cache = ResultCache(tmp_path / "cache")
        first = execute(plain, jobs=1, cache=cache)
        second = execute(faulty, jobs=1, cache=cache)
        # The faulty sweep found nothing reusable in the cache...
        assert not any(record.cached for record in second)
        # ...and each sweep's entries landed under distinct digests.
        assert len(cache) == len(plain) + len(faulty)
        assert not {r.digest for r in first} & {r.digest for r in second}
        # Payloads genuinely differ: the faulty run saw the failure.
        assert first[0].payload != second[0].payload
