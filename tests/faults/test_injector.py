"""Tests for the deterministic fault injector."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultEvent, FaultInjector
from repro.sim.kernel import Simulation
from repro.sim.rng import RandomStream


def make_injector(seed=42, **kwargs):
    stream = RandomStream(seed=seed).substream("faults")
    return FaultInjector(stream=stream, **kwargs)


def drain(injector, horizon=100_000):
    """Every event the injector fires up to ``horizon``, one poll per
    pending time (mirrors how the coordinators consume it)."""
    events = []
    while True:
        upcoming = injector.peek()
        if upcoming is None or upcoming > horizon:
            return events
        events.extend(injector.pop_due(upcoming))


class TestScripted:
    def test_scripted_failure_fires_at_interval(self):
        injector = make_injector(num_disks=4, fail_at=((2, 10),))
        assert injector.pop_due(9) == []
        assert not injector.is_down(2)
        events = injector.pop_due(10)
        assert events == [FaultEvent(interval=10, disk=2, kind="fail")]
        assert injector.is_down(2)

    def test_no_mttr_leaves_drive_down_forever(self):
        injector = make_injector(num_disks=4, fail_at=((2, 10),))
        injector.pop_due(10)
        assert injector.peek() is None
        assert injector.is_down(2)

    def test_mttr_schedules_a_repair(self):
        injector = make_injector(num_disks=4, mttr=5.0, fail_at=((2, 10),))
        injector.pop_due(10)
        repair_at = injector.peek()
        assert repair_at is not None and repair_at > 10
        events = injector.pop_due(repair_at)
        assert events == [FaultEvent(interval=repair_at, disk=2, kind="repair")]
        assert not injector.is_down(2)

    def test_overlapping_failures_collapse(self):
        """A drive scripted to fail twice while down fails once."""
        injector = make_injector(num_disks=4, fail_at=((2, 10), (2, 12)))
        assert len(injector.pop_due(20)) == 1
        assert injector.is_down(2)

    def test_repair_then_next_stochastic_failure(self):
        """With MTTF and MTTR both set, drives cycle fail/repair."""
        injector = make_injector(num_disks=2, mttf=50.0, mttr=5.0)
        events = drain(injector, horizon=2_000)
        kinds = [e.kind for e in events if e.disk == 0]
        assert len(kinds) > 4
        # Strict alternation per drive: fail, repair, fail, repair, ...
        assert all(
            kind == ("fail" if i % 2 == 0 else "repair")
            for i, kind in enumerate(kinds)
        )


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = drain(make_injector(num_disks=8, mttf=200.0, mttr=20.0), 5_000)
        b = drain(make_injector(num_disks=8, mttf=200.0, mttr=20.0), 5_000)
        assert a == b
        assert len(a) > 10

    def test_different_seed_different_schedule(self):
        a = drain(make_injector(seed=1, num_disks=8, mttf=200.0, mttr=20.0), 5_000)
        b = drain(make_injector(seed=2, num_disks=8, mttf=200.0, mttr=20.0), 5_000)
        assert a != b

    def test_per_disk_streams_independent_of_array_width(self):
        """A drive's lifetime draws depend on (seed, disk) only: adding
        more drives to the array never moves an existing drive's
        failure times."""
        narrow = drain(make_injector(num_disks=2, mttf=200.0, mttr=20.0), 5_000)
        wide = drain(make_injector(num_disks=8, mttf=200.0, mttr=20.0), 5_000)
        narrow_d0 = [e for e in narrow if e.disk == 0]
        wide_d0 = [e for e in wide if e.disk == 0]
        assert narrow_d0 == wide_d0

    def test_polling_granularity_irrelevant(self):
        """Events are the same whether polled every interval or in one
        big catch-up call."""
        fine = make_injector(num_disks=4, mttf=100.0, mttr=10.0)
        coarse = make_injector(num_disks=4, mttf=100.0, mttr=10.0)
        fine_events = []
        for t in range(1_000):
            fine_events.extend(fine.pop_due(t))
        assert fine_events == coarse.pop_due(999)


class TestKernelAdapter:
    def test_schedule_on_matches_pop_due(self):
        """The event-stepped driver fires the identical sequence the
        interval-stepped polling sees."""
        polled = drain(make_injector(num_disks=4, mttf=100.0, mttr=10.0), 2_000)
        assert polled

        injector = make_injector(num_disks=4, mttf=100.0, mttr=10.0)
        sim = Simulation()
        fired = []
        interval_length = 1.5
        injector.schedule_on(sim, interval_length, fired.append)
        horizon = (polled[-1].interval + 1) * interval_length
        sim.run(until=horizon)
        assert fired == polled

    def test_driver_terminates_when_schedule_exhausts(self):
        injector = make_injector(num_disks=4, fail_at=((1, 3),))
        sim = Simulation()
        fired = []
        injector.schedule_on(sim, 1.0, fired.append)
        sim.run(until=100.0)
        assert fired == [FaultEvent(interval=3, disk=1, kind="fail")]


class TestValidation:
    def test_rejects_empty_array(self):
        with pytest.raises(ConfigurationError):
            make_injector(num_disks=0)

    def test_rejects_nonpositive_lifetimes(self):
        with pytest.raises(ConfigurationError):
            make_injector(num_disks=4, mttf=0.0)
        with pytest.raises(ConfigurationError):
            make_injector(num_disks=4, mttr=-1.0)

    def test_rejects_out_of_range_scripted_disk(self):
        with pytest.raises(ConfigurationError):
            make_injector(num_disks=4, fail_at=((4, 10),))
