"""Shared fixtures for the chaos/failpoint test suite.

Every test here runs with a *disarmed* failpoint registry on entry and
exit, and crashes are simulated by swapping the ``os._exit`` primitive
for an exception the test can catch — the real harness (``repro
chaos``) is where processes actually die.
"""

import pytest

from repro import failpoints, integrity


class FakeCrash(BaseException):
    """Stands in for ``os._exit`` so 'crashes' survive in-process.

    Deliberately a ``BaseException``: the write paths under test catch
    ``OSError``/``Exception`` families, and a real ``os._exit`` would
    bypass those handlers exactly like this does.
    """

    def __init__(self, code: int) -> None:
        super().__init__(code)
        self.code = code


@pytest.fixture(autouse=True)
def _disarmed(monkeypatch):
    for var in (
        failpoints.FAILPOINTS_ENV,
        failpoints.SEED_ENV,
        failpoints.GATE_ENV,
    ):
        monkeypatch.delenv(var, raising=False)
    failpoints.install("")
    integrity.reset_warnings()
    yield
    failpoints.install("")
    integrity.reset_warnings()


@pytest.fixture
def crash(monkeypatch):
    """Patch the crash primitive; returns the exception type raised."""

    def _exit(code: int) -> None:
        raise FakeCrash(code)

    monkeypatch.setattr(failpoints, "_exit", _exit)
    return FakeCrash
