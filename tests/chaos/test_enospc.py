"""Graceful ENOSPC/EDQUOT degradation (satellite of the failpoint PR).

A full disk must never fail a sweep: the cache, journal, event
stream, and obs store are accelerators/observers, so each degrades to
a no-op with a single warning.  Genuine I/O errors, by contrast, must
still propagate — silence is only for running out of space.
"""

import pytest

from repro import failpoints
from repro.exec.cache import ResultCache
from repro.exec.journal import SweepJournal, load_journal
from repro.integrity import reset_warnings, warn_degraded
from repro.obs.events import SweepEventBus
from repro.obs.store import ObsArtifactStore

DIGEST = "ab" * 32
RECORD = {
    "kind": "experiment",
    "label": "row",
    "status": "ok",
    "payload": {"admitted": 7},
    "duration_s": 0.5,
}


class TestCacheDegradation:
    def test_enospc_disables_with_one_warning(self, tmp_path, capsys):
        failpoints.install("cache.write.pre_rename=enospc")
        cache = ResultCache(tmp_path)
        cache.put(DIGEST, dict(RECORD))  # must not raise
        assert cache.disabled
        assert cache.get(DIGEST) is None  # nothing was persisted
        cache.put(DIGEST, dict(RECORD))  # no-op, still quiet
        err = capsys.readouterr().err
        assert err.count("result cache degraded") == 1
        # No stray temp files left behind.
        assert not list(tmp_path.rglob("*.tmp"))

    def test_io_error_still_propagates(self, tmp_path):
        failpoints.install("cache.write.pre_rename=error:io")
        cache = ResultCache(tmp_path)
        with pytest.raises(OSError):
            cache.put(DIGEST, dict(RECORD))
        assert not cache.disabled


class TestJournalDegradation:
    def test_edquot_kills_journaling_not_the_sweep(self, tmp_path, capsys):
        failpoints.install("journal.append.pre_write=error:edquot")
        journal = SweepJournal(tmp_path, "sweep01")
        journal.begin(["sweep"], [DIGEST])  # must not raise
        assert journal.dead
        journal.record_run(
            DIGEST, kind="experiment", label="row", status="ok",
            payload={"admitted": 7},
        )  # no-op
        assert load_journal(journal.path) is None
        assert capsys.readouterr().err.count("sweep journal degraded") == 1


class TestEventBusDegradation:
    def test_enospc_darkens_the_stream_once(self, tmp_path, capsys):
        failpoints.install("events.emit=enospc")
        bus = SweepEventBus(tmp_path, "sweep01")
        bus.emit("sweep_begin", total=1)  # must not raise
        assert bus._dead
        bus.emit("heartbeat")  # silent no-op
        err = capsys.readouterr().err
        assert err.count("sweep event stream degraded") == 1


class TestObsStoreDegradation:
    def test_enospc_drops_the_artifact_with_a_warning(
        self, tmp_path, capsys
    ):
        failpoints.install("obs.store.write.pre_rename=enospc")
        store = ObsArtifactStore(tmp_path, level="metrics")
        store.put(DIGEST, runs=[{"admitted": 7}])  # must not raise
        assert store.get(DIGEST) is None  # a miss, to backfill later
        err = capsys.readouterr().err
        assert err.count("obs artifact store degraded") == 1


class TestWarnDedup:
    def test_one_warning_per_component_per_process(self, capsys):
        assert warn_degraded("thing", "first")
        assert not warn_degraded("thing", "second")
        assert warn_degraded("other", "first")
        reset_warnings()
        assert warn_degraded("thing", "again")
        err = capsys.readouterr().err
        assert err.count("thing degraded") == 2
        assert err.count("other degraded") == 1
