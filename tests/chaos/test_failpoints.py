"""Unit tests for the failpoint registry, grammar, and scheduling."""

import errno

import pytest

from repro import failpoints
from repro.errors import ConfigurationError
from repro.failpoints import (
    CRASH_EXIT_CODE,
    InjectedFault,
    InjectedTransientError,
    parse_spec,
)


class TestParsing:
    def test_default_hit_is_one(self):
        rules = parse_spec("cache.write.pre_rename=crash")
        rule = rules["cache.write.pre_rename"]
        assert rule.action == "crash"
        assert rule.hit == 1
        assert rule.probability is None
        assert not rule.once

    def test_torn_and_delay_args(self):
        rules = parse_spec("a=torn:9;b=delay:250")
        assert rules["a"].arg == 9
        assert rules["b"].arg == 250.0
        # delay has no default hit: it fires on every evaluation.
        assert rules["b"].hit is None

    def test_error_kinds(self):
        for kind in ("io", "transient", "poison", "enospc", "edquot"):
            rules = parse_spec(f"s=error:{kind}")
            assert rules["s"].arg == kind

    def test_hit_and_probability_schedules(self):
        assert parse_spec("s=crash@7")["s"].hit == 7
        assert parse_spec("s=crash%0.5")["s"].probability == 0.5

    def test_commas_join_rules_too(self):
        rules = parse_spec("a=crash,b=enospc")
        assert set(rules) == {"a", "b"}

    def test_describe_round_trips_the_shape(self):
        rule = parse_spec("s=torn:9@2")["s"]
        assert rule.describe() == "s=torn:9@2"

    @pytest.mark.parametrize(
        "spec",
        [
            "noequals",
            "s=bogus",
            "s=error:wat",
            "s=torn:x",
            "s=torn:-1",
            "s=crash%1.5",
            "s=crash%0",
            "s=crash@0",
            "s=crash@2%0.5",
            "s=crash:5",
            "s=delay:soon",
        ],
    )
    def test_malformed_specs_are_configuration_errors(self, spec):
        with pytest.raises(ConfigurationError):
            parse_spec(spec)

    def test_once_requires_a_gate_directory(self):
        with pytest.raises(ConfigurationError):
            parse_spec("s=crash!once")

    def test_once_parses_with_gate(self, monkeypatch, tmp_path):
        monkeypatch.setenv(failpoints.GATE_ENV, str(tmp_path))
        assert parse_spec("s=crash!once")["s"].once


class TestRegistry:
    def test_discover_sites_enumerates_the_stack(self):
        sites = failpoints.discover_sites()
        expected = {
            "agent.result.pre_push",
            "cache.write.post_rename",
            "cache.write.pre_rename",
            "cluster.client.post_send",
            "cluster.client.pre_send",
            "cluster.sweep.post_submit",
            "events.emit",
            "executor.persist.post",
            "executor.persist.pre",
            "journal.append.post_write",
            "journal.append.pre_write",
            "master.registry.pre_expire",
            "master.result.pre_persist",
            "obs.store.write.pre_rename",
            "worker.result.pre_put",
        }
        assert expected <= set(sites)
        # Every site carries a human description for `chaos --list`.
        assert all(sites[name] for name in expected)


class TestFiring:
    def test_zero_cost_when_off(self):
        failpoints.install("")
        assert not failpoints.active()
        assert failpoints.fire("cache.write.pre_rename") is None
        assert failpoints.fire("never.registered.site") is None

    def test_hit_count_fires_exactly_once(self):
        failpoints.install("s=error:io@2")
        failpoints.fire("s")  # evaluation 1: armed but not yet due
        with pytest.raises(OSError) as info:
            failpoints.fire("s")  # evaluation 2: fires
        assert info.value.errno == errno.EIO
        failpoints.fire("s")  # evaluation 3: already spent

    def test_crash_uses_the_exit_primitive(self, crash):
        failpoints.install("s=crash")
        with pytest.raises(crash) as info:
            failpoints.fire("s")
        assert info.value.code == CRASH_EXIT_CODE

    def test_torn_writes_prefix_then_crashes(self, crash):
        failpoints.install("s=torn:4")
        chunks = []
        with pytest.raises(crash):
            failpoints.fire("s", data=b"abcdefgh", writer=chunks.append)
        assert chunks == [b"abcd"]

    def test_torn_without_writer_degrades_to_crash(self, crash):
        failpoints.install("s=torn:4")
        with pytest.raises(crash):
            failpoints.fire("s")

    def test_error_kind_exceptions(self):
        failpoints.install("a=enospc;b=error:edquot;c=error:transient;"
                           "d=error:poison")
        with pytest.raises(OSError) as info:
            failpoints.fire("a")
        assert info.value.errno == errno.ENOSPC
        with pytest.raises(OSError) as info:
            failpoints.fire("b")
        assert info.value.errno == errno.EDQUOT
        with pytest.raises(InjectedTransientError):
            failpoints.fire("c")
        with pytest.raises(InjectedFault):
            failpoints.fire("d")

    def test_delay_fires_every_evaluation(self, monkeypatch):
        naps = []
        monkeypatch.setattr(failpoints.time, "sleep", naps.append)
        failpoints.install("s=delay:5")
        failpoints.fire("s")
        failpoints.fire("s")
        assert naps == [0.005, 0.005]

    def test_probability_schedule_is_seed_deterministic(self):
        def pattern(seed):
            failpoints.install("s=error:transient%0.5", seed=seed)
            fired = []
            for _ in range(32):
                try:
                    failpoints.fire("s")
                    fired.append(False)
                except InjectedTransientError:
                    fired.append(True)
            return fired

        first = pattern(seed=7)
        assert pattern(seed=7) == first
        assert any(first) and not all(first)  # actually probabilistic

    def test_once_gate_spans_processes(self, monkeypatch, tmp_path):
        monkeypatch.setenv(failpoints.GATE_ENV, str(tmp_path))
        failpoints.install("s=error:io!once")
        with pytest.raises(OSError):
            failpoints.fire("s")
        # A "new process" re-arms from the same spec (hit counters
        # reset) but the on-disk gate token says the site already
        # fired somewhere — it must stay quiet.
        failpoints.install("s=error:io!once")
        failpoints.fire("s")
        assert list(tmp_path.glob("*.fired"))

    def test_install_from_env(self, monkeypatch):
        monkeypatch.setenv(failpoints.FAILPOINTS_ENV, "a=crash@3;b=delay:10")
        failpoints.install_from_env()
        described = sorted(
            rule.describe() for rule in failpoints.active_rules()
        )
        assert described == ["a=crash@3", "b=delay:10"]
        monkeypatch.delenv(failpoints.FAILPOINTS_ENV)
        failpoints.install_from_env()
        assert not failpoints.active()
