"""End-to-end crash consistency: real subprocesses, real crashes.

These drive the same harness machinery as ``repro chaos`` over a few
representative scenarios — a hard kill at the cache boundary, a torn
journal tail, and an on-disk corruption round trip — and additionally
prove the harness *detects* divergence (a checker that cannot fail
proves nothing).
"""

import pytest

from repro import failpoints
from repro.failpoints.harness import (
    Baseline,
    ChaosError,
    Scenario,
    _capture_baseline,
    _run_corruption,
    _run_local,
    chaos_plan,
)


def _by_name(name):
    (scenario,) = [s for s in chaos_plan() if s.name == name]
    return scenario


class TestPlan:
    def test_every_registered_site_is_exercised(self):
        sites = set(failpoints.discover_sites())
        covered = {
            scenario.spec.split("=", 1)[0]
            for scenario in chaos_plan()
            if scenario.spec
        }
        assert covered == sites

    def test_quick_subset_covers_the_core_stores(self):
        quick = chaos_plan(quick=True)
        assert all(scenario.quick for scenario in quick)
        covered = {s.spec.split("=", 1)[0] for s in quick if s.spec}
        assert {
            "cache.write.pre_rename",
            "journal.append.pre_write",
            "journal.append.post_write",
            "events.emit",
            "cluster.client.post_send",
        } <= covered

    def test_names_and_specs_are_unique(self):
        plan = chaos_plan()
        names = [scenario.name for scenario in plan]
        assert len(names) == len(set(names))


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("chaos-e2e")
    return workdir, _capture_baseline(workdir)


class TestConvergence:
    def test_crash_at_cache_write_recovers_byte_identically(self, baseline):
        workdir, base = baseline
        _run_local(_by_name("cache-write-crash"), base, workdir)

    def test_torn_journal_tail_recovers_byte_identically(self, baseline):
        workdir, base = baseline
        _run_local(_by_name("journal-append-torn"), base, workdir)

    def test_corruption_is_quarantined_and_reexecuted(self, baseline):
        workdir, base = baseline
        _run_corruption(_by_name("corrupt-cache-object"), base, workdir)


class TestDetection:
    def test_row_divergence_is_flagged(self, baseline):
        workdir, _ = baseline
        wrong = Baseline(rows=b"not the real rows", settled="0" * 64)
        scenario = Scenario(
            "detect-divergence", "", "fault-free run vs poisoned baseline",
            expect=(0,),
        )
        with pytest.raises(ChaosError, match="differ"):
            _run_local(scenario, wrong, workdir)

    def test_unexpected_exit_code_is_flagged(self, baseline):
        workdir, base = baseline
        # A scenario that demands a crash from a run with no failpoint
        # armed: the sweep exits 0 and the harness must call that out.
        scenario = Scenario(
            "detect-no-crash", "", "exit-code expectation check",
            expect=(failpoints.CRASH_EXIT_CODE,),
        )
        with pytest.raises(ChaosError, match="exited 0"):
            _run_local(scenario, base, workdir)
