"""Self-describing checksums + quarantine (satellite of the failpoint
PR): a corrupt-but-parsable object is never served."""

import json

import pytest

from repro.exec.cache import ResultCache
from repro.integrity import (
    QUARANTINE_SUBDIR,
    quarantine_file,
    record_checksum,
)
from repro.obs.store import ObsArtifactStore

DIGEST = "ab" * 32
RECORD = {
    "kind": "experiment",
    "label": "row",
    "status": "ok",
    "payload": {"admitted": 7, "rejected": 1},
    "duration_s": 0.5,
}


class TestRecordChecksum:
    def test_excludes_the_checksum_field_itself(self):
        body = {"a": 1, "b": [2, 3]}
        assert record_checksum(body) == record_checksum(
            {**body, "checksum": "stale-lie"}
        )

    def test_normalises_like_json_serialization(self):
        # A put computes the digest over live objects; a get over the
        # parsed file.  Tuples and int keys must not split them.
        assert record_checksum({"a": (1, 2), "m": {1: "x"}}) == (
            record_checksum({"a": [1, 2], "m": {"1": "x"}})
        )

    def test_value_changes_change_it(self):
        assert record_checksum({"a": 1}) != record_checksum({"a": 2})


class TestCacheQuarantine:
    def test_round_trip_verifies(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(DIGEST, dict(RECORD))
        stored = cache.get(DIGEST)
        assert stored is not None
        assert stored["payload"] == RECORD["payload"]
        assert cache.quarantined == 0

    def test_corrupt_payload_is_quarantined_not_served(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(DIGEST, dict(RECORD))
        path = cache.path_for(DIGEST)
        record = json.loads(path.read_text())
        record["payload"]["admitted"] = 9999  # the lie
        path.write_text(json.dumps(record) + "\n")
        assert cache.get(DIGEST) is None
        assert cache.quarantined == 1
        assert not path.exists()
        evidence = list((tmp_path / QUARANTINE_SUBDIR).iterdir())
        assert len(evidence) == 1
        kept = json.loads(evidence[0].read_text())
        assert kept["payload"]["admitted"] == 9999  # preserved as-is

    def test_missing_checksum_is_treated_as_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for(DIGEST)
        path.parent.mkdir(parents=True)
        legacy = dict(RECORD, digest=DIGEST)  # no checksum field
        path.write_text(json.dumps(legacy) + "\n")
        assert cache.get(DIGEST) is None
        assert cache.quarantined == 1

    def test_requarantine_never_overwrites_evidence(self, tmp_path):
        cache = ResultCache(tmp_path)
        for value in (1, 2):
            cache.put(DIGEST, dict(RECORD))
            path = cache.path_for(DIGEST)
            record = json.loads(path.read_text())
            record["payload"]["admitted"] = value * 1000
            path.write_text(json.dumps(record) + "\n")
            assert cache.get(DIGEST) is None
        names = sorted(
            entry.name for entry in (tmp_path / QUARANTINE_SUBDIR).iterdir()
        )
        assert len(names) == 2 and names[0] != names[1]

    def test_reexecute_after_quarantine_serves_again(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(DIGEST, dict(RECORD))
        path = cache.path_for(DIGEST)
        record = json.loads(path.read_text())
        record["payload"]["admitted"] = 9999
        path.write_text(json.dumps(record) + "\n")
        assert cache.get(DIGEST) is None
        cache.put(DIGEST, dict(RECORD))  # the re-execution
        stored = cache.get(DIGEST)
        assert stored is not None
        assert stored["payload"] == RECORD["payload"]


class TestObsStoreQuarantine:
    def test_corrupt_artifact_is_a_quarantined_miss(self, tmp_path):
        store = ObsArtifactStore(tmp_path, level="metrics")
        store.put(DIGEST, runs=[{"admitted": 7}])
        assert store.get(DIGEST) is not None
        path = store.artifact_path(DIGEST)
        artifact = json.loads(path.read_text())
        artifact["runs"][0]["admitted"] = 9999
        path.write_text(json.dumps(artifact) + "\n")
        assert store.get(DIGEST) is None
        assert store.quarantined == 1
        assert not path.exists()
        assert list((tmp_path / QUARANTINE_SUBDIR).iterdir())


class TestQuarantineFile:
    def test_collisions_get_numeric_suffixes(self, tmp_path):
        victims = []
        for serial in range(3):
            victim = tmp_path / "evil.json"
            victim.write_text(f"{serial}\n")
            victims.append(quarantine_file(tmp_path, victim))
        names = sorted(entry.name for entry in victims)
        assert names == ["evil.json", "evil.json.1", "evil.json.2"]

    def test_failure_returns_none(self, tmp_path):
        missing = tmp_path / "never-existed.json"
        assert quarantine_file(tmp_path, missing) is None
