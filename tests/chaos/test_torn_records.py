"""Torn mid-record tails: journal and event stream (satellite of the
failpoint PR).

A crash inside an append may persist only a prefix of the record.
These tests tear real files with ``torn:<bytes>`` failpoints and then
demand the recovery contract: everything before the tear stands, the
torn fragment is skipped *and isolated* (the next session's first
append must not glue onto it), and folding/compacting the stream is
equivalent before and after.
"""

import json

import pytest

from repro import failpoints
from repro.exec.journal import SweepJournal, load_journal
from repro.obs.events import (
    SweepEventBus,
    compact_events_file,
    load_events,
    replay_events,
    settled_events_digest,
)

PAYLOAD = {"num_stations": 4, "admitted": 7}
DIGEST_A = "a" * 64
DIGEST_B = "b" * 64


def _record(journal, digest, payload=None):
    journal.record_run(
        digest,
        kind="experiment",
        label="row",
        status="ok",
        payload=payload or PAYLOAD,
        duration_s=0.5,
    )


class TestJournalTornTail:
    def test_tear_loses_only_the_torn_record(self, tmp_path, crash):
        journal = SweepJournal(tmp_path, "sweep01")
        journal.begin(["sweep"], [DIGEST_A, DIGEST_B])
        failpoints.install("journal.append.pre_write=torn:9")
        with pytest.raises(crash):
            _record(journal, DIGEST_A)
        raw = journal.path.read_bytes()
        assert not raw.endswith(b"\n")  # a genuine mid-record tear
        state = load_journal(journal.path)
        assert state is not None  # begin record still stands
        assert state.runs == {}  # the torn run is gone, nothing else

    def test_resume_append_does_not_glue_onto_the_tear(
        self, tmp_path, crash
    ):
        journal = SweepJournal(tmp_path, "sweep01")
        journal.begin(["sweep"], [DIGEST_A, DIGEST_B])
        failpoints.install("journal.append.pre_write=torn:9")
        with pytest.raises(crash):
            _record(journal, DIGEST_A)
        failpoints.install("")
        # A fresh session (post-crash process) appends to the same
        # journal: the torn fragment must be terminated first, or this
        # record would fuse with it into one unparsable line — losing
        # the *new* record too.
        resumed = SweepJournal(tmp_path, "sweep01")
        _record(resumed, DIGEST_A)
        _record(resumed, DIGEST_B)
        state = load_journal(resumed.path)
        assert set(state.runs) == {DIGEST_A, DIGEST_B}
        assert state.runs[DIGEST_A]["payload"] == PAYLOAD
        # Exactly one line (the fragment) is unparsable.
        lines = resumed.path.read_text().splitlines()
        bad = [line for line in lines if _unparsable(line)]
        assert len(bad) == 1 and bad[0] != ""

    def test_clean_tail_is_not_repaired(self, tmp_path):
        journal = SweepJournal(tmp_path, "sweep01")
        journal.begin(["sweep"], [DIGEST_A])
        _record(journal, DIGEST_A)
        text = journal.path.read_text()
        assert "\n\n" not in text  # no spurious repair newline
        assert all(not _unparsable(line) for line in text.splitlines())

    def test_tear_at_zero_bytes_equals_clean_crash(self, tmp_path, crash):
        journal = SweepJournal(tmp_path, "sweep01")
        journal.begin(["sweep"], [DIGEST_A])
        failpoints.install("journal.append.pre_write=torn:0")
        with pytest.raises(crash):
            _record(journal, DIGEST_A)
        # Zero torn bytes: the record is simply absent, the file clean.
        state = load_journal(journal.path)
        assert state.runs == {}
        resumed = SweepJournal(tmp_path, "sweep01")
        _record(resumed, DIGEST_A)
        assert set(load_journal(resumed.path).runs) == {DIGEST_A}


class TestEventStreamTornTail:
    def _build_torn_stream(self, root, crash):
        bus = SweepEventBus(root, "sweep01")
        bus.emit("sweep_begin", sweep_id="sweep01", total=2, jobs=1)
        for _ in range(3):
            bus.emit("heartbeat", active=1, queued=1)
        bus.emit(
            "run_settled",
            digest=DIGEST_A, index=0, status="ok", poisoned=False,
        )
        for _ in range(2):
            bus.emit("heartbeat", active=1, queued=0)
        failpoints.install("events.emit=torn:7")
        with pytest.raises(crash):
            bus.emit(
                "run_settled",
                digest=DIGEST_B, index=1, status="ok", poisoned=False,
            )
        failpoints.install("")
        bus.close()
        return bus.path

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path, crash):
        path = self._build_torn_stream(tmp_path, crash)
        assert not path.read_bytes().endswith(b"\n")
        events = load_events(path)
        kinds = [event["event"] for event in events]
        assert kinds.count("run_settled") == 1  # the torn one is gone
        progress = replay_events(events)
        assert set(progress.settled) == {DIGEST_A}

    def test_replay_fold_equivalence_after_compaction(
        self, tmp_path, crash
    ):
        path = self._build_torn_stream(tmp_path, crash)
        before_events = load_events(path)
        before_digest = settled_events_digest(before_events)
        before_fold = replay_events(before_events).to_dict()
        torn_tail = path.read_bytes().splitlines()[-1]
        assert compact_events_file(path)  # heartbeats did compact
        after_events = load_events(path)
        after_digest = settled_events_digest(after_events)
        after_fold = replay_events(after_events).to_dict()
        assert after_digest == before_digest
        assert after_fold == before_fold
        # The tear survives compaction byte-for-byte, where it was.
        assert path.read_bytes().splitlines()[-1] == torn_tail

    def test_reopen_after_tear_starts_a_fresh_line(self, tmp_path, crash):
        path = self._build_torn_stream(tmp_path, crash)
        resumed = SweepEventBus(tmp_path, "sweep01")
        resumed.emit(
            "run_settled",
            digest=DIGEST_B, index=1, status="ok", poisoned=False,
        )
        resumed.close()
        progress = replay_events(load_events(path))
        assert set(progress.settled) == {DIGEST_A, DIGEST_B}
        digest = settled_events_digest(load_events(path))
        # The recovered stream settles both rows ok — same digest as a
        # never-torn stream carrying the same outcomes.
        clean = settled_events_digest(
            [
                {"event": "run_settled", "digest": DIGEST_A,
                 "status": "ok", "poisoned": False},
                {"event": "run_settled", "digest": DIGEST_B,
                 "status": "ok", "poisoned": False},
            ]
        )
        assert digest == clean


def _unparsable(line):
    line = line.strip()
    if not line:
        return False
    try:
        json.loads(line)
        return False
    except json.JSONDecodeError:
        return True
