"""Tests for the closed-form analysis package."""

from __future__ import annotations

import pytest

from repro.analysis.bandwidth import (
    bandwidth_table,
    marginal_gain,
    paper_formula_bandwidth,
)
from repro.analysis.latency import (
    expected_contiguous_wait,
    k_equals_d_blocking_time,
    worst_case_initiation_delay,
)
from repro.analysis.memory import (
    fragmentation_buffer_demand,
    low_bandwidth_buffer_demand,
    minimum_memory,
)
from repro.analysis.skew import (
    disks_used_by_object,
    is_perfectly_balanced,
    residue_classes,
    skew_profile,
    stride_is_skew_free,
)
from repro.errors import ConfigurationError
from repro.hardware.disk import SABRE_DISK


class TestBandwidth:
    def test_paper_formula_matches_model_for_one_cylinder(self):
        frag = SABRE_DISK.cylinder_capacity
        assert paper_formula_bandwidth(SABRE_DISK, frag) == pytest.approx(
            SABRE_DISK.effective_bandwidth(1)
        )

    def test_table_rows_monotone(self):
        rows = bandwidth_table(SABRE_DISK, 5)
        bandwidths = [r["effective_bandwidth_mbps"] for r in rows]
        wastes = [r["wasted_percent"] for r in rows]
        assert bandwidths == sorted(bandwidths)
        assert wastes == sorted(wastes, reverse=True)

    def test_marginal_gain_shrinks(self):
        assert marginal_gain(SABRE_DISK, 2) < marginal_gain(SABRE_DISK, 1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            paper_formula_bandwidth(SABRE_DISK, 0.0)
        with pytest.raises(ConfigurationError):
            bandwidth_table(SABRE_DISK, 0)


class TestLatency:
    def test_paper_9_and_16_second_examples(self):
        assert worst_case_initiation_delay(SABRE_DISK, 90, 3, 1) == pytest.approx(
            8.75, abs=0.05
        )
        assert worst_case_initiation_delay(SABRE_DISK, 90, 3, 2) == pytest.approx(
            16.12, abs=0.05
        )

    def test_expected_wait_grows_as_stride_shrinks(self):
        small_k = expected_contiguous_wait(100, 1, 0.6)
        large_k = expected_contiguous_wait(100, 5, 0.6)
        assert small_k > large_k

    def test_k_equals_d_blocks_for_a_display_time(self):
        assert k_equals_d_blocking_time(181440.0, 100.0) == pytest.approx(1814.4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            worst_case_initiation_delay(SABRE_DISK, 2, 3)
        with pytest.raises(ConfigurationError):
            expected_contiguous_wait(10, 0, 1.0)
        with pytest.raises(ConfigurationError):
            k_equals_d_blocking_time(0.0, 1.0)


class TestMemory:
    def test_minimum_memory_formula(self):
        assert minimum_memory(20.0, 0.05, 0.001) == pytest.approx(1.02)

    def test_fragmentation_demand(self):
        assert fragmentation_buffer_demand([0, 2, 1], 12.0) == pytest.approx(36.0)

    def test_low_bandwidth_demand(self):
        assert low_bandwidth_buffer_demand(12.0) == pytest.approx(12.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fragmentation_buffer_demand([-1], 12.0)
        with pytest.raises(ConfigurationError):
            low_bandwidth_buffer_demand(12.0, num_sharers=1)


class TestSkew:
    def test_residue_classes(self):
        assert residue_classes(1000, 5) == 200
        assert residue_classes(1000, 1) == 1000
        assert residue_classes(10, 10) == 1

    def test_skew_free_strides(self):
        assert stride_is_skew_free(1000, 1)
        assert stride_is_skew_free(1000, 3)
        assert not stride_is_skew_free(1000, 5)

    def test_paper_28_disk_example(self):
        assert disks_used_by_object(100, 1, 25, 4) == 28
        assert disks_used_by_object(100, 4, 25, 4) == 100

    def test_perfect_balance_rule(self):
        # k=1 always satisfies the width condition.
        assert is_perfectly_balanced(100, 1, 200, 3)
        # Simple striping: M=5 over D=1000, n multiple of R=200.
        assert is_perfectly_balanced(1000, 5, 3000, 5)
        # Width not a multiple of gcd -> skewed.
        assert not is_perfectly_balanced(6, 2, 6, 3)

    def test_skew_profile_balanced_case(self):
        profile = skew_profile(10, 1, 20, 3)
        assert profile["relative_skew"] == 0.0
        assert profile["disks_used"] == 10

    def test_skew_profile_k_equals_d(self):
        profile = skew_profile(10, 10, 20, 3)
        assert profile["disks_used"] == 3
