"""Tests for the latency-profile experiment."""

from __future__ import annotations

import pytest

from repro.experiments.latency_profile import (
    latency_histogram,
    latency_profiles,
    profile_row,
)
from repro.simulation.config import ScaledConfig
from repro.simulation.results import SimulationResult


def make_result(latencies, interval_length=0.6):
    result = SimulationResult(
        technique="simple", num_stations=4, access_mean=1.0,
        interval_length=interval_length, warmup_intervals=0,
        measure_intervals=100, completed=len(latencies),
        latencies_intervals=list(latencies),
    )
    return result


class TestHistogramConversion:
    def test_counts_every_completion(self):
        result = make_result([0, 1, 2, 3, 10])
        histogram = latency_histogram(result)
        assert histogram.count == 5
        assert histogram.overflow == 0

    def test_quantiles_in_seconds(self):
        result = make_result([10] * 100, interval_length=0.5)
        row = profile_row(result)
        assert row["p50_s"] == pytest.approx(5.0, abs=0.2)
        assert row["max_s"] == pytest.approx(5.0, abs=0.01)

    def test_empty_result_is_safe(self):
        row = profile_row(make_result([]))
        assert row["completed"] == 0
        assert row["p99_s"] == 0.0


class TestEndToEnd:
    def test_profiles_both_techniques(self):
        rows = latency_profiles(
            config=ScaledConfig(scale=50, warmup_intervals=60,
                                measure_intervals=600),
            num_stations=4,
            access_mean=0.2,
        )
        assert [row["technique"] for row in rows] == ["simple", "vdr"]
        for row in rows:
            assert row["completed"] > 0
            assert row["p50_s"] <= row["p90_s"] <= row["p99_s"] + 1e-9