"""Property-based tests (hypothesis) on the core invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import AdmissionMode, Admitter
from repro.core.coalesce import run_coalescing_lane
from repro.core.delivery import run_fragmented_delivery
from repro.core.display import Display
from repro.core.virtual_disks import SlotPool, first_arrival
from repro.media.layout import StripingLayout
from repro.media.objects import FragmentAddress
from tests.conftest import make_object

# ----------------------------------------------------------------------
# Layout invariants
# ----------------------------------------------------------------------

layout_params = st.tuples(
    st.integers(min_value=2, max_value=40),  # D
    st.integers(min_value=1, max_value=40),  # k (reduced mod D below)
    st.integers(min_value=1, max_value=30),  # n
    st.integers(min_value=1, max_value=8),  # M
    st.integers(min_value=0, max_value=39),  # start disk
)


@given(layout_params)
@settings(max_examples=150, deadline=None)
def test_stride_relation_and_consecutive_fragments(params):
    d, k_raw, n, m_raw, start = params
    k = (k_raw - 1) % d + 1
    m = min(m_raw, d)
    layout = StripingLayout(num_disks=d, stride=k)
    obj = make_object(num_subobjects=n, degree=m)
    layout.place(obj, start_disk=start)
    for i in range(n):
        first = layout.disk_of(FragmentAddress(0, i, 0))
        # Stride relation between consecutive subobjects.
        if i + 1 < n:
            assert layout.disk_of(FragmentAddress(0, i + 1, 0)) == (first + k) % d
        # Fragments of one subobject on M consecutive drives.
        for j in range(m):
            assert layout.disk_of(FragmentAddress(0, i, j)) == (first + j) % d


@given(layout_params)
@settings(max_examples=150, deadline=None)
def test_every_fragment_maps_to_exactly_one_disk(params):
    d, k_raw, n, m_raw, start = params
    k = (k_raw - 1) % d + 1
    m = min(m_raw, d)
    layout = StripingLayout(num_disks=d, stride=k)
    obj = make_object(num_subobjects=n, degree=m)
    layout.place(obj, start_disk=start)
    counts = layout.fragment_counts(obj.object_id)
    assert sum(counts) == n * m


@given(
    st.integers(min_value=2, max_value=60),
    st.integers(min_value=1, max_value=60),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=150, deadline=None)
def test_gcd_rule_balances_load(d, k_raw, m_multiplier):
    """§3.2.2's GCD rule: when the subobject width M is a multiple of
    gcd(D, k) and the subobject count covers whole residue tours, the
    per-drive fragment counts are exactly equal."""
    k = (k_raw - 1) % d + 1
    g = math.gcd(d, k)
    m = min(m_multiplier * g, d)
    if m % g:  # clamping to d may break the rule's precondition
        return
    classes = d // g
    layout = StripingLayout(num_disks=d, stride=k)
    obj = make_object(num_subobjects=2 * classes, degree=m)
    layout.place(obj, start_disk=0)
    counts = layout.fragment_counts(obj.object_id)
    assert max(counts) == min(counts)


@given(
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=1, max_value=5),
)
@settings(max_examples=100, deadline=None)
def test_stride_one_never_skews(d, n_tours, m_raw):
    """k = 1 guarantees no data skew for full residue tours."""
    m = min(m_raw, d)
    layout = StripingLayout(num_disks=d, stride=1)
    obj = make_object(num_subobjects=n_tours * d, degree=m)
    layout.place(obj, start_disk=0)
    counts = layout.fragment_counts(obj.object_id)
    assert max(counts) == min(counts)


# ----------------------------------------------------------------------
# Virtual-disk arithmetic
# ----------------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=0, max_value=199),
    st.integers(min_value=0, max_value=199),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=200, deadline=None)
def test_first_arrival_is_correct_and_minimal(d, k_raw, slot_raw, target_raw, t0):
    k = (k_raw - 1) % d + 1
    slot, target = slot_raw % d, target_raw % d
    arrival = first_arrival(slot, target, k, d, t0)
    if arrival is None:
        # No solution: verify across one full period.
        period = d // math.gcd(k, d)
        assert all((slot + k * t) % d != target for t in range(period))
    else:
        assert arrival >= t0
        assert (slot + k * arrival) % d == target
        # Minimality.
        assert all(
            (slot + k * t) % d != target for t in range(t0, arrival)
        )


@given(st.integers(min_value=1, max_value=30), st.data())
@settings(max_examples=100, deadline=None)
def test_slot_pool_conservation(d, data):
    """Claims and releases conserve half-slots exactly."""
    pool = SlotPool(num_disks=d, stride=1)
    live = {}
    for step in range(20):
        slot = data.draw(st.integers(min_value=0, max_value=d - 1))
        if (slot in live) or not pool.is_free(slot, 1):
            if slot in live:
                pool.release(slot, live.pop(slot))
        else:
            halves = data.draw(st.sampled_from([1, 2]))
            if pool.is_free(slot, halves):
                owner = f"o{step}"
                pool.claim(slot, owner, halves=halves)
                live[slot] = owner
    total_claimed = sum(pool.claimed_halves(z) for z in range(d))
    expected = sum(
        pool.owners_of(z).get(owner, 0) for z, owner in live.items()
    )
    assert total_claimed == expected


# ----------------------------------------------------------------------
# Delivery equivalence: Algorithm 1 trace == closed-form Display
# ----------------------------------------------------------------------


@given(
    st.integers(min_value=4, max_value=16),  # D
    st.integers(min_value=1, max_value=3),  # M
    st.integers(min_value=1, max_value=8),  # n
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_algorithm1_trace_matches_closed_form(d, m, n, data):
    m = min(m, d)
    pool = SlotPool(num_disks=d, stride=1)
    start = data.draw(st.integers(min_value=0, max_value=d - 1))
    # Pick M distinct slots; each reaches its target (stride 1).
    slots = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=d - 1),
            min_size=m,
            max_size=m,
            unique=True,
        )
    )
    obj = make_object(num_subobjects=n, degree=m)
    trace, offsets = run_fragmented_delivery(obj, start, slots, pool)
    # Closed form.
    display = Display(display_id=1, obj=obj, start_disk=start, requested_at=0)
    for lane, slot in zip(display.lanes, slots):
        lane.slot = slot
        lane.ready = pool.arrival(slot, (start + lane.fragment) % d, 0)
    assert trace.delivered_subobjects() == list(range(n))
    deliveries = trace.outputs_by_interval()
    assert min(deliveries) == display.deliver_start
    assert max(deliveries) == display.finish_interval
    for lane in display.lanes:
        assert offsets[lane.fragment] == display.lane_write_offset(lane.fragment)


# ----------------------------------------------------------------------
# Coalescing never causes a hiccup
# ----------------------------------------------------------------------


@given(
    st.integers(min_value=4, max_value=20),  # n
    st.integers(min_value=0, max_value=5),  # old offset
    st.integers(min_value=0, max_value=5),  # new offset (clamped)
    st.integers(min_value=0, max_value=10),  # grant delay after start
)
@settings(max_examples=100, deadline=None)
def test_coalescing_delivery_is_continuous(n, old_offset, new_raw, grant_delay):
    new_offset = min(new_raw, old_offset)
    deliver_start = old_offset  # lane ready at 0
    obj = make_object(num_subobjects=n, degree=2)
    coalesce_at = deliver_start + grant_delay
    trace = run_coalescing_lane(
        obj,
        lane=0,
        deliver_start=deliver_start,
        ready=0,
        coalesce_at=coalesce_at,
        new_offset=new_offset,
        horizon=deliver_start + n + old_offset + grant_delay + 16,
    )
    outputs = [(e.interval, e.subobject) for e in trace.outputs()]
    assert outputs == [(deliver_start + s, s) for s in range(n)]
    reads = [e.subobject for e in trace.reads()]
    assert reads == list(range(n))  # every fragment read exactly once


# ----------------------------------------------------------------------
# Admission: claimed displays never share slots
# ----------------------------------------------------------------------


@given(
    st.integers(min_value=6, max_value=24),
    st.integers(min_value=1, max_value=3),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_admitted_displays_hold_disjoint_slots(d, k, data):
    k = min(k, d)
    pool = SlotPool(num_disks=d, stride=k)
    admitter = Admitter(pool, AdmissionMode.FRAGMENTED)
    displays = []
    for display_id in range(4):
        m = data.draw(st.integers(min_value=1, max_value=min(4, d)))
        start = data.draw(st.integers(min_value=0, max_value=d - 1))
        obj = make_object(object_id=display_id, num_subobjects=5, degree=m)
        display = Display(
            display_id=display_id, obj=obj, start_disk=start, requested_at=0
        )
        displays.append(display)
    for interval in range(3 * d):
        for display in displays:
            if not display.fully_laned:
                admitter.try_claim(display, interval)
    owned = {}
    for display in displays:
        for lane in display.lanes:
            if lane.slot is not None:
                key = lane.slot
                assert key not in owned or owned[key] == display.display_id
                owned.setdefault(key, display.display_id)
    # Pool agrees with lane bookkeeping.
    for slot, display_id in owned.items():
        assert display_id in pool.owners_of(slot)
