"""Tests for the mixed-media and fairness experiments (§3.2, §5)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.mixed_media import (
    DEFAULT_MIX,
    bandwidth_waste_naive,
    build_mixed_system,
    fairness_comparison,
    run_mixed_media,
)
from repro.simulation.policy import Request


class TestBandwidthWaste:
    def test_paper_50_percent_example(self):
        """§3.2: 120 + 60 mbps media in 6-drive clusters waste 50% of
        the 60 mbps displays' drives; 25% weighted over an even mix."""
        mix = (("y", 120.0, 1), ("z", 60.0, 1))
        assert bandwidth_waste_naive(mix) == pytest.approx(0.25)

    def test_default_mix_wastes_over_a_third(self):
        assert bandwidth_waste_naive(DEFAULT_MIX) == pytest.approx(0.375)

    def test_single_type_wastes_nothing(self):
        assert bandwidth_waste_naive((("v", 100.0, 3),)) == 0.0


class TestBuildMixedSystem:
    def test_staggered_keeps_per_type_degrees(self):
        catalog, _policy = build_mixed_system(naive=False)
        degrees = sorted({obj.degree for obj in catalog})
        assert degrees == [2, 3, 4, 6]

    def test_naive_forces_max_degree(self):
        catalog, policy = build_mixed_system(naive=True)
        assert {obj.degree for obj in catalog} == {6}
        assert policy.disk_manager.stride == 6

    def test_divisibility_enforced(self):
        with pytest.raises(ConfigurationError):
            build_mixed_system(num_disks=59)


class TestMixedMediaComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_mixed_media(num_stations=12, measure_intervals=1500)

    def test_staggered_outperforms_naive(self, rows):
        by_design = {row["design"]: row for row in rows}
        assert (
            by_design["staggered"]["displays_per_hour"]
            > by_design["naive-Mmax-clusters"]["displays_per_hour"]
        )

    def test_staggered_latency_lower_for_every_class(self, rows):
        by_design = {row["design"]: row for row in rows}
        for name, _bw, _count in DEFAULT_MIX:
            key = f"latency_{name}_ivs"
            assert by_design["staggered"][key] <= by_design[
                "naive-Mmax-clusters"
            ][key]


class TestFairness:
    @pytest.fixture(scope="class")
    def rows(self):
        return fairness_comparison(measure_intervals=1500)

    def test_all_disciplines_make_progress(self, rows):
        for row in rows:
            assert row["displays_per_hour"] > 0

    def test_sjf_prioritises_narrow_requests(self, rows):
        by_discipline = {row["discipline"]: row for row in rows}
        assert (
            by_discipline["sjf"]["narrow_latency_ivs"]
            <= by_discipline["scan"]["narrow_latency_ivs"]
        )

    def test_wide_requests_wait_longer_than_narrow(self, rows):
        """Time fragmentation penalises wide displays (§3.2's W example)."""
        for row in rows:
            assert row["wide_latency_ivs"] > row["narrow_latency_ivs"]


class TestAntiHoardingRule:
    def test_heavy_mixed_contention_never_deadlocks(self):
        """Regression: greedy fragmented claims used to deadlock when
        many partial displays hoarded all virtual disks."""
        mix = (("narrow", 40.0, 6), ("wide", 120.0, 6))
        catalog, policy = build_mixed_system(
            num_disks=36, naive=False, mix=mix, num_subobjects=40
        )
        # Flood with more demand than the array can ever hold at once.
        for i, object_id in enumerate(list(catalog.object_ids) * 4):
            policy.submit(
                Request(request_id=i + 1, station_id=i, object_id=object_id,
                        issued_at=0),
                interval=0,
            )
        completions = 0
        for interval in range(3000):
            completions += len(policy.advance(interval))
            if policy.pending_count() == 0:
                break
        assert policy.pending_count() == 0
        assert completions == 48
