"""Tests for the §5 seek-buffering study."""

from __future__ import annotations

import pytest

from repro.analysis.seek_buffering import (
    average_overhead_bandwidth,
    buffering_table,
    max_bandwidth_for_buffer,
    provisioned_bandwidth,
    simulate_hiccup_rate,
)
from repro.errors import ConfigurationError
from repro.sim.rng import RandomStream


class TestProvisionedBandwidth:
    def test_worst_case_budget_matches_model(self, sabre):
        assert provisioned_bandwidth(sabre, sabre.t_switch) == pytest.approx(
            sabre.effective_bandwidth(1)
        )

    def test_zero_overhead_is_peak_rate(self, sabre):
        assert provisioned_bandwidth(sabre, 0.0) == pytest.approx(
            sabre.transfer_rate
        )

    def test_average_ceiling_above_worst_case(self, sabre):
        assert average_overhead_bandwidth(sabre) > sabre.effective_bandwidth(1)

    def test_validation(self, sabre):
        with pytest.raises(ConfigurationError):
            provisioned_bandwidth(sabre, -0.1)


class TestHiccupSimulation:
    def test_worst_case_budget_never_hiccups(self, sabre):
        rate = simulate_hiccup_rate(
            sabre, sabre.t_switch, buffer_size=0.0, activations=2000,
            stream=RandomStream(3),
        )
        assert rate == 0.0

    def test_aggressive_budget_without_buffer_hiccups(self, sabre):
        budget = sabre.avg_seek + sabre.avg_latency
        rate = simulate_hiccup_rate(
            sabre, budget, buffer_size=0.0, activations=2000,
            stream=RandomStream(3),
        )
        assert rate > 0.1

    def test_buffer_absorbs_variance(self, sabre):
        budget = sabre.avg_seek + sabre.avg_latency + 0.003
        no_buffer = simulate_hiccup_rate(
            sabre, budget, 0.0, 2000, RandomStream(3)
        )
        one_cylinder = simulate_hiccup_rate(
            sabre, budget, sabre.cylinder_capacity, 2000, RandomStream(3)
        )
        assert one_cylinder < no_buffer

    def test_validation(self, sabre):
        with pytest.raises(ConfigurationError):
            simulate_hiccup_rate(sabre, 0.01, -1.0, 10, RandomStream(1))
        with pytest.raises(ConfigurationError):
            simulate_hiccup_rate(sabre, 0.01, 0.0, 0, RandomStream(1))


class TestBufferingStudy:
    @pytest.fixture(scope="class")
    def table(self, request):
        from repro.hardware.disk import SABRE_DISK

        return buffering_table(SABRE_DISK, activations=5000)

    def test_row_zero_is_worst_case(self, table, sabre):
        assert table[0].buffer_cylinders == 0.0
        assert table[0].effective_bandwidth_mbps == pytest.approx(
            sabre.effective_bandwidth(1)
        )
        assert table[0].gain_over_worst_case_pct == 0.0

    def test_bandwidth_grows_with_buffer(self, table):
        bandwidths = [row.effective_bandwidth_mbps for row in table]
        assert all(
            later >= earlier - 0.05
            for earlier, later in zip(bandwidths, bandwidths[1:])
        )
        assert bandwidths[-1] > bandwidths[0]

    def test_one_cylinder_recovers_most_of_the_gap(self, table, sabre):
        """The paper's 'a cylinder or so' hypothesis: most of the
        worst-case-to-average gap is recoverable."""
        ceiling = average_overhead_bandwidth(sabre)
        worst = sabre.effective_bandwidth(1)
        one_cylinder = next(
            row for row in table if row.buffer_cylinders == 1.0
        )
        recovered = (one_cylinder.effective_bandwidth_mbps - worst) / (
            ceiling - worst
        )
        assert recovered > 0.6

    def test_bandwidth_stays_below_average_ceiling(self, table, sabre):
        ceiling = average_overhead_bandwidth(sabre)
        for row in table:
            assert row.effective_bandwidth_mbps <= ceiling + 1e-6

    def test_search_validation(self, sabre):
        with pytest.raises(ConfigurationError):
            max_bandwidth_for_buffer(sabre, 1.0, hiccup_target=0.0)
