"""Tests for the experiment scripts (figures/tables reproduce in shape).

These run the *scaled* configuration at reduced windows, asserting the
qualitative results the paper reports; the full-scale runs live in
``examples/paper_figure8.py`` and EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure8 import (
    base_config,
    run_point,
    scaled_means,
    scaled_stations,
)
from repro.experiments.layouts import (
    figure1_grid,
    figure3_schedule,
    figure4_grid,
    figure5_grid,
    grid_to_text,
)
from repro.experiments.section31 import fragment_size_tradeoff, sabre_numbers
from repro.experiments.stride import (
    k_extremes_analysis,
    rounding_waste_rows,
    stride_sweep,
)
from repro.experiments.table4 import run_table4, scaled_table4_stations
from repro.experiments.tertiary import layout_cost_rows, simulated_comparison
from repro.simulation.config import ScaledConfig


@pytest.fixture(scope="module")
def quick_config():
    """A fast scaled config shared by the simulation-backed tests."""
    return ScaledConfig(scale=10, warmup_intervals=300, measure_intervals=1500)


class TestLayoutFigures:
    def test_figure1_rows(self):
        grid = figure1_grid(4)
        assert grid[0][:3] == ["X0.0", "X0.1", "X0.2"]
        assert grid[1][3:6] == ["X1.0", "X1.1", "X1.2"]
        assert grid[3][:3] == ["X3.0", "X3.1", "X3.2"]  # wrapped

    def test_figure4_shifts_by_one(self):
        grid = figure4_grid(8)
        for i in range(7):
            first = grid[i].index(f"X{i}.0")
            assert grid[i + 1].index(f"X{i + 1}.0") == (first + 1) % 8

    def test_figure5_matches_paper_rows(self):
        grid = figure5_grid(13)
        assert grid[0][0] == "Y0.0"
        assert grid[0][4] == "X0.0"
        assert grid[0][7] == "Z0.0"
        assert grid[12][0] == "Y12.0"  # full wrap after 12 rows

    def test_figure3_idle_rotates(self):
        rows = figure3_schedule()
        # Paper: cluster 0 idle at intervals 3 and 6; cluster 1 at 4;
        # cluster 2 at 5 (after X, the 3-subobject object, completes).
        assert rows[3]["cluster 0"] == "idle"
        assert rows[4]["cluster 1"] == "idle"
        assert rows[5]["cluster 2"] == "idle"
        assert rows[6]["cluster 0"] == "idle"
        assert rows[2]["cluster 2"] == "read X(2)"

    def test_grid_to_text_renders(self):
        text = grid_to_text(figure1_grid(2))
        assert "X0.0" in text and "subobject" in text


class TestSection31:
    def test_headline_numbers(self):
        numbers = sabre_numbers()
        assert numbers["service_1cyl_ms"] == pytest.approx(301.85, abs=0.1)
        assert numbers["service_2cyl_ms"] == pytest.approx(555.87, abs=0.1)
        assert numbers["waste_1cyl_pct"] == pytest.approx(17.2, abs=0.1)
        assert numbers["waste_2cyl_pct"] == pytest.approx(10.0, abs=0.1)
        assert numbers["delay_90disks_1cyl_s"] == pytest.approx(8.75, abs=0.05)
        assert numbers["delay_90disks_2cyl_s"] == pytest.approx(16.12, abs=0.05)

    def test_tradeoff_rows_show_both_trends(self):
        rows = fragment_size_tradeoff(max_cylinders=4)
        bandwidths = [r["effective_bandwidth_mbps"] for r in rows]
        delays = [r["worst_delay_90disks_s"] for r in rows]
        assert bandwidths == sorted(bandwidths)
        assert delays == sorted(delays)


class TestStrideExperiments:
    def test_rounding_waste_examples(self):
        rows = {r["display_mbps"]: r for r in rounding_waste_rows()}
        assert rows[30.0]["whole_disk_waste_pct"] == pytest.approx(25.0)
        assert rows[30.0]["half_disk_waste_pct"] == pytest.approx(0.0)

    def test_k_extremes(self):
        analysis = k_extremes_analysis()
        assert analysis["kD_blocking_s"] > analysis["k1_worst_wait_s"]
        assert analysis["k1_worst_wait_s"] > analysis["kM_worst_wait_s"]

    def test_stride_sweep_runs(self, quick_config):
        rows = stride_sweep(
            strides=[1, 5], config=quick_config, num_stations=10,
            access_mean=1.0,
        )
        assert [r["stride"] for r in rows] == [1, 5]
        for row in rows:
            assert row["displays_per_hour"] > 0
        by_k = {r["stride"]: r for r in rows}
        assert by_k[1]["skew_free"]
        assert not by_k[5]["skew_free"]


class TestTertiaryExperiments:
    def test_layout_cost_rows(self):
        rows = {r["tape_order"]: r for r in layout_cost_rows()}
        assert rows["sequential"]["wasted_pct"] > 50.0
        assert rows["fragment_ordered"]["wasted_pct"] < 1.0
        assert (
            rows["fragment_ordered"]["effective_mbps"]
            > rows["sequential"]["effective_mbps"]
        )

    def test_simulated_comparison_shape(self, quick_config):
        rows = {r["tape_order"]: r
                for r in simulated_comparison(config=quick_config,
                                              num_stations=6)}
        # Sequential recordings cripple the tertiary-bound workload.
        assert (
            rows["fragment_ordered"]["displays_per_hour"]
            >= rows["sequential"]["displays_per_hour"]
        )


class TestFigure8AndTable4Shape:
    def test_scaled_axes(self):
        assert scaled_stations(10) == [1, 3, 6, 12, 25]
        assert scaled_means(10) == [1.0, 2.0, 4.35]
        assert scaled_table4_stations(10) == [1, 6, 12, 25]

    def test_striping_beats_vdr_at_high_load(self, quick_config):
        striping = run_point(quick_config, "simple", 1.0, 25)
        vdr = run_point(quick_config, "vdr", 1.0, 25)
        assert striping.throughput_per_hour > vdr.throughput_per_hour

    def test_throughput_grows_with_stations(self, quick_config):
        low = run_point(quick_config, "simple", 1.0, 2)
        high = run_point(quick_config, "simple", 1.0, 20)
        assert high.throughput_per_hour > low.throughput_per_hour

    def test_uniform_access_engages_tertiary(self, quick_config):
        skewed = run_point(quick_config, "simple", 1.0, 12)
        uniform = run_point(quick_config, "simple", 4.35, 12)
        assert uniform.tertiary_utilization > skewed.tertiary_utilization
        assert uniform.hit_rate < skewed.hit_rate + 1e-9
        assert uniform.throughput_per_hour < skewed.throughput_per_hour

    def test_table4_improvements_positive_at_load(self, quick_config):
        rows = run_table4(
            config=quick_config, stations=[25], means=[1.0, 4.35]
        )
        row = rows[0]
        assert row["mean_1_improvement_pct"] > 0
        assert row["mean_4.35_improvement_pct"] > 0
