"""Cross-module integration tests: whole-system invariants."""

from __future__ import annotations

import pytest

from repro.core.admission import AdmissionMode
from repro.core.disk_manager import DiskManager
from repro.core.object_manager import ObjectManager
from repro.core.scheduler import StaggeredStripingPolicy
from repro.core.tertiary_manager import TertiaryManager
from repro.hardware.disk import TABLE3_DISK
from repro.hardware.disk_array import DiskArray
from repro.hardware.tertiary import TertiaryDevice
from repro.media.catalog import Catalog
from repro.media.tape_layout import TapeLayout, TapeOrder
from repro.simulation.config import ScaledConfig
from repro.simulation.policy import Request
from repro.simulation.runner import build_engine
from tests.conftest import make_object


def build_validated_policy(num_disks=12, stride=1, mode=AdmissionMode.FRAGMENTED):
    objects = [make_object(i, num_subobjects=8, degree=3) for i in range(4)]
    catalog = Catalog(objects)
    array = DiskArray(model=TABLE3_DISK, num_disks=num_disks)
    disk_manager = DiskManager(array=array, stride=stride, placement_alignment=3)
    object_manager = ObjectManager(catalog, capacity=catalog.total_size)
    tertiary = TertiaryManager(
        device=TertiaryDevice(bandwidth=40.0, reposition_time=0.6),
        tape_layout=TapeLayout(TapeOrder.FRAGMENT_ORDERED),
        interval_length=0.6048,
        disk_bandwidth=20.0,
    )
    return StaggeredStripingPolicy(
        catalog=catalog,
        disk_manager=disk_manager,
        object_manager=object_manager,
        tertiary_manager=tertiary,
        admission_mode=mode,
    )


class TestPhysicalValidation:
    """Replay the scheduler's closed-form schedules against the
    physical array: no drive oversubscription, correct fragment homes."""

    @pytest.mark.parametrize("mode", list(AdmissionMode))
    def test_concurrent_displays_validate_every_interval(self, mode):
        policy = build_validated_policy(mode=mode)
        policy.preload([0, 1, 2, 3])
        for i in range(4):
            policy.submit(
                Request(request_id=i + 1, station_id=i, object_id=i, issued_at=0),
                interval=0,
            )
        for interval in range(40):
            policy.advance(interval)
            policy.disk_manager.validate_interval(
                policy._active.values(), interval
            )
            if policy.pending_count() == 0:
                break
        assert policy.completed == 4

    def test_validation_with_simple_striping_stride(self):
        policy = build_validated_policy(stride=3, mode=AdmissionMode.CONTIGUOUS)
        policy.preload([0, 1, 2, 3])
        for i in range(4):
            policy.submit(
                Request(request_id=i + 1, station_id=i, object_id=i, issued_at=0),
                interval=0,
            )
        for interval in range(60):
            policy.advance(interval)
            policy.disk_manager.validate_interval(
                policy._active.values(), interval
            )
            if policy.pending_count() == 0:
                break
        assert policy.completed == 4


class TestConservation:
    """Every request eventually completes; every slot comes home."""

    @pytest.mark.parametrize("technique", ["simple", "staggered", "vdr"])
    def test_closed_loop_conserves_requests(self, technique):
        config = ScaledConfig(
            technique=technique, num_stations=6, access_mean=2.0,
            warmup_intervals=0, measure_intervals=1200,
        )
        engine = build_engine(config)
        result = engine.run(0, 1200)
        issued = sum(s.requests_issued for s in engine.stations.stations)
        outstanding = engine.policy.pending_count()
        assert issued == result.completed + outstanding
        assert outstanding <= 6

    def test_slots_all_free_after_drain(self):
        config = ScaledConfig(
            technique="simple", num_stations=4, access_mean=1.0,
        )
        engine = build_engine(config)
        for _ in range(400):
            engine.step()
        # Stop issuing further requests and let the system drain
        # (displays are 300 intervals long; queued ones serialise).
        # Completions reset next_issue_at, so park the think time too.
        for station in engine.stations.stations:
            station.next_issue_at = 10**9
            station.think_intervals = 10**9
        for _ in range(4000):
            engine.step()
            if engine.policy.pending_count() == 0:
                break
        assert engine.policy.pending_count() == 0
        # A few more intervals for the trailing lane releases.
        for _ in range(5):
            engine.step()
        assert engine.policy.disk_manager.pool.free_count == config.num_disks


class TestHiccupFreedom:
    """An admitted display delivers one subobject per interval with no
    gaps — the paper's core guarantee."""

    def test_delivery_intervals_are_contiguous(self):
        policy = build_validated_policy()
        policy.preload([0, 1, 2, 3])
        deliveries = {}
        for i in range(4):
            policy.submit(
                Request(request_id=i + 1, station_id=i, object_id=i, issued_at=0),
                interval=0,
            )
        seen = {}
        for interval in range(60):
            policy.advance(interval)
            seen.update(policy._active)
            for display in seen.values():
                subobject = display.delivers_at(interval)
                if subobject is not None:
                    deliveries.setdefault(display.display_id, []).append(
                        (interval, subobject)
                    )
            if policy.pending_count() == 0:
                break
        assert len(deliveries) == 4
        for schedule in deliveries.values():
            intervals = [t for t, _ in schedule]
            subobjects = [s for _, s in schedule]
            assert intervals == list(range(intervals[0], intervals[0] + 8))
            assert subobjects == list(range(8))
