"""Property-based fuzzing of the full staggered-striping scheduler.

Random small systems, random request streams, random disciplines —
assert the global invariants: every request completes, every virtual
disk comes home, no display hiccups, and the physical replay never
oversubscribes a drive.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import AdmissionMode
from repro.core.disk_manager import DiskManager
from repro.core.object_manager import ObjectManager
from repro.core.scheduler import StaggeredStripingPolicy
from repro.hardware.disk import TABLE3_DISK
from repro.hardware.disk_array import DiskArray
from repro.media.catalog import Catalog
from repro.simulation.policy import Request
from tests.conftest import make_object

systems = st.fixed_dictionaries(
    {
        "num_disks": st.integers(min_value=6, max_value=20),
        "stride": st.integers(min_value=1, max_value=4),
        "mode": st.sampled_from(list(AdmissionMode)),
        "discipline": st.sampled_from(["scan", "fcfs", "sjf", "largest_first"]),
        "degrees": st.lists(
            st.integers(min_value=1, max_value=4), min_size=2, max_size=5
        ),
        "num_subobjects": st.integers(min_value=2, max_value=10),
        "requests": st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),  # object index
                st.integers(min_value=0, max_value=12),  # arrival interval
            ),
            min_size=1,
            max_size=12,
        ),
    }
)


@given(systems)
@settings(max_examples=80, deadline=None)
def test_random_workloads_conserve_everything(params):
    num_disks = params["num_disks"]
    degrees = [min(d, num_disks) for d in params["degrees"]]
    objects = [
        make_object(i, num_subobjects=params["num_subobjects"], degree=d)
        for i, d in enumerate(degrees)
    ]
    catalog = Catalog(objects)
    array = DiskArray(model=TABLE3_DISK, num_disks=num_disks)
    disk_manager = DiskManager(array=array, stride=params["stride"])
    object_manager = ObjectManager(catalog, capacity=catalog.total_size * 2)
    policy = StaggeredStripingPolicy(
        catalog=catalog,
        disk_manager=disk_manager,
        object_manager=object_manager,
        tertiary_manager=None,
        admission_mode=params["mode"],
        queue_discipline=params["discipline"],
    )
    policy.preload(catalog.object_ids)

    arrivals = sorted(
        (when, i, objects[obj_index % len(objects)].object_id)
        for i, (obj_index, when) in enumerate(params["requests"])
    )
    submitted = 0
    completions = []
    # CONTIGUOUS claims with gcd(k, D) > 1 can only align with start
    # drives in reachable residues; the horizon must cover the rotation
    # period times the queue depth.
    horizon = 40 + num_disks * (len(arrivals) + 2) * params["num_subobjects"]
    for interval in range(horizon):
        for when, request_id, object_id in arrivals:
            if when == interval:
                policy.submit(
                    Request(
                        request_id=request_id,
                        station_id=request_id,
                        object_id=object_id,
                        issued_at=interval,
                    ),
                    interval,
                )
                submitted += 1
        completions.extend(policy.advance(interval))
        policy.disk_manager.validate_interval(policy._active.values(), interval)
        if submitted == len(arrivals) and policy.pending_count() == 0:
            break

    # Conservation: every submitted request completed exactly once.
    assert submitted == len(arrivals)
    assert len(completions) == submitted
    assert len({c.request.request_id for c in completions}) == submitted
    # Every delivery window has the right length (no hiccups).
    for completion in completions:
        assert (
            completion.finished_at - completion.deliver_start + 1
            == params["num_subobjects"]
        )
        assert completion.startup_latency >= 0
    # All virtual disks are returned after trailing lane releases.
    for extra in range(1, 4):
        policy.advance(interval + extra)
    assert policy.disk_manager.pool.free_count == num_disks
