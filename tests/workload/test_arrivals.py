"""Unit tests for the open arrival machinery.

Sources, modulation, the `OpenArrivals` interval coupling, deadline
blocking through the engine, and the `ArrivalProcess` contract shared
with the closed `StationPool`.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStream
from repro.simulation.engine import IntervalEngine
from repro.simulation.policy import Request
from repro.workload.access import UniformAccess, ZipfAccess
from repro.workload.analytic import LossServerPolicy
from repro.workload.arrivals import (
    OPEN_STATION_ID,
    ArrivalProcess,
    MMPPSource,
    OpenArrivals,
    PoissonSource,
    RateModulation,
)
from repro.workload.stations import StationPool


def make_open(
    rate=0.5,
    seed=7,
    deadline=None,
    modulation=None,
    burst_hotspot=0.0,
    catalog=(0, 1, 2, 3),
):
    stream = RandomStream(seed)
    needs_thinning = modulation is not None and not modulation.is_flat
    return OpenArrivals(
        source=PoissonSource(rate, stream.substream("workload.arrivals")),
        access=UniformAccess(
            list(catalog), stream.substream("workload.access")
        ),
        interval_length=1.0,
        deadline_intervals=deadline,
        modulation=modulation,
        burst_hotspot=burst_hotspot,
        modulation_stream=(
            stream.substream("workload.modulation")
            if needs_thinning
            else None
        ),
        burst_stream=(
            stream.substream("workload.burst") if burst_hotspot > 0 else None
        ),
        kind="poisson",
    )


class TestArrivalProcessContract:
    def test_station_pool_is_a_closed_arrival_process(self, stream):
        pool = StationPool(num_stations=3, access=None)
        assert isinstance(pool, ArrivalProcess)
        assert pool.is_open is False
        assert pool.deadline_intervals is None
        assert pool.kind == "closed"
        assert len(pool) == 3

    def test_open_arrivals_is_open(self):
        arrivals = make_open()
        assert isinstance(arrivals, ArrivalProcess)
        assert arrivals.is_open is True
        assert arrivals.kind == "poisson"
        assert len(arrivals) == 0  # unbounded population

    def test_record_blocked_default_is_noop(self):
        pool = StationPool(num_stations=1, access=None)
        request = Request(
            request_id=1, station_id=0, object_id=0, issued_at=0
        )
        pool.record_blocked(request, 0)  # must not raise


class TestPoissonSource:
    def test_rejects_nonpositive_rate(self, stream):
        with pytest.raises(ConfigurationError):
            PoissonSource(0.0, stream)

    def test_times_strictly_increase(self, stream):
        source = PoissonSource(2.0, stream)
        times = [source.next_time() for _ in range(200)]
        assert all(b > a for a, b in zip(times, times[1:]))
        assert times[0] > 0


class TestMMPPSource:
    def test_validation(self, stream):
        other = RandomStream(2)
        with pytest.raises(ConfigurationError):
            MMPPSource([1.0], [1.0], stream, other)
        with pytest.raises(ConfigurationError):
            MMPPSource([1.0, 2.0], [1.0], stream, other)
        with pytest.raises(ConfigurationError):
            MMPPSource([0.0, 0.0], [1.0, 1.0], stream, other)
        with pytest.raises(ConfigurationError):
            MMPPSource([1.0, 2.0], [1.0, 0.0], stream, other)

    def test_stationary_distribution(self, stream):
        source = MMPPSource(
            [1.0, 3.0], [10.0, 30.0], stream, RandomStream(2)
        )
        assert source.stationary_distribution() == [0.25, 0.75]

    def test_zero_rate_phase_emits_nothing(self):
        """A silent phase only contributes idle time."""
        source = MMPPSource(
            [5.0, 0.0],
            [10.0, 10.0],
            RandomStream(3),
            RandomStream(4),
        )
        times = [source.next_time() for _ in range(500)]
        assert all(b > a for a, b in zip(times, times[1:]))
        # Both phases were visited, yet every arrival landed in the
        # emitting phase's share of the timeline.
        assert source.time_in_phase[0] > 0
        assert source.time_in_phase[1] > 0


class TestRateModulation:
    def test_flat_by_default(self):
        flat = RateModulation()
        assert flat.is_flat
        assert flat.factor(123.0) == 1.0
        assert flat.peak_factor == 1.0

    def test_diurnal_peaks_and_troughs(self):
        curve = RateModulation(diurnal_period=100.0, diurnal_amplitude=0.5)
        assert not curve.is_flat
        assert curve.factor(25.0) == pytest.approx(1.5)  # sin peak
        assert curve.factor(75.0) == pytest.approx(0.5)  # sin trough
        assert curve.peak_factor == pytest.approx(1.5)

    def test_burst_window(self):
        burst = RateModulation(
            burst_start=10.0, burst_end=20.0, burst_factor=3.0
        )
        assert not burst.is_flat
        assert burst.in_burst(10.0) and burst.in_burst(19.9)
        assert not burst.in_burst(20.0) and not burst.in_burst(9.9)
        assert burst.factor(15.0) == 3.0
        assert burst.factor(25.0) == 1.0
        assert burst.peak_factor == 3.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RateModulation(diurnal_amplitude=1.5, diurnal_period=10.0)
        with pytest.raises(ConfigurationError):
            RateModulation(diurnal_amplitude=0.5)  # no period
        with pytest.raises(ConfigurationError):
            RateModulation(burst_factor=-1.0)


class TestOpenArrivals:
    def test_requests_land_in_their_interval(self):
        arrivals = make_open(rate=2.0)
        for interval in range(50):
            for request in arrivals.ready_requests(interval):
                assert request.issued_at == interval
                assert request.station_id == OPEN_STATION_ID

    def test_request_ids_unique_and_offered_counted(self):
        arrivals = make_open(rate=2.0)
        ids = [
            r.request_id
            for t in range(100)
            for r in arrivals.ready_requests(t)
        ]
        assert len(ids) == len(set(ids))
        assert arrivals.offered == len(ids)

    def test_deterministic_for_seed(self):
        first = [
            (r.request_id, r.object_id)
            for t in range(100)
            for r in make_open(seed=42).ready_requests(t)
        ]
        second = [
            (r.request_id, r.object_id)
            for t in range(100)
            for r in make_open(seed=42).ready_requests(t)
        ]
        assert first == second
        assert first != [
            (r.request_id, r.object_id)
            for t in range(100)
            for r in make_open(seed=43).ready_requests(t)
        ]

    def test_thinning_reduces_volume(self):
        """A half-amplitude diurnal curve offers the same average rate
        as the flat source, but the source runs at peak — thinning
        must discard the difference."""
        flat = make_open(rate=1.0, seed=9)
        shaped = make_open(
            rate=1.0,
            seed=9,
            modulation=RateModulation(
                diurnal_period=200.0, diurnal_amplitude=0.5
            ),
        )
        horizon = 2000
        flat_count = sum(
            len(flat.ready_requests(t)) for t in range(horizon)
        )
        shaped_count = sum(
            len(shaped.ready_requests(t)) for t in range(horizon)
        )
        # Peak-rate source offers 1.5x; thinning brings it back near
        # the nominal average (well below the raw peak volume).
        assert shaped_count < flat_count * 1.25

    def test_burst_redirects_to_hot_title(self):
        burst = RateModulation(
            burst_start=0.0, burst_end=1000.0, burst_factor=1.0
        )
        # burst_factor 1 keeps the rate flat but opens the window, so
        # hotspot redirection is isolated from thinning.
        arrivals = make_open(
            rate=1.0,
            seed=5,
            modulation=burst,
            burst_hotspot=1.0,
            catalog=(7, 8, 9),
        )
        objects = {
            r.object_id
            for t in range(500)
            for r in arrivals.ready_requests(t)
        }
        assert objects == {7}  # every arrival redirected to the hottest

    def test_zipf_catalog_skew(self):
        stream = RandomStream(11)
        arrivals = OpenArrivals(
            source=PoissonSource(
                2.0, stream.substream("workload.arrivals")
            ),
            access=ZipfAccess(
                list(range(20)), 1.2, stream.substream("workload.access")
            ),
            interval_length=1.0,
            kind="poisson",
        )
        counts = {}
        for t in range(2000):
            for request in arrivals.ready_requests(t):
                counts[request.object_id] = (
                    counts.get(request.object_id, 0) + 1
                )
        assert counts.get(0, 0) > counts.get(5, 0) > counts.get(19, 0)

    def test_shaped_arrivals_require_thinning_stream(self):
        stream = RandomStream(1)
        with pytest.raises(ConfigurationError):
            OpenArrivals(
                source=PoissonSource(1.0, stream.substream("a")),
                access=UniformAccess([0], stream.substream("b")),
                interval_length=1.0,
                modulation=RateModulation(
                    diurnal_period=10.0, diurnal_amplitude=0.5
                ),
            )

    def test_hotspot_requires_burst_stream(self):
        stream = RandomStream(1)
        with pytest.raises(ConfigurationError):
            OpenArrivals(
                source=PoissonSource(1.0, stream.substream("a")),
                access=UniformAccess([0], stream.substream("b")),
                interval_length=1.0,
                burst_hotspot=0.5,
            )


class TestDeadlineBlocking:
    """The engine's blocking bookkeeping against a tiny server bank."""

    def run_engine(self, deadline, servers=1, rate=0.5, measure=2000):
        engine = IntervalEngine(
            policy=LossServerPolicy(servers, service_intervals=50),
            stations=make_open(rate=rate, deadline=deadline),
            interval_length=1.0,
        )
        result = engine.run(warmup_intervals=0, measure_intervals=measure)
        return engine, result

    def test_overload_blocks_and_balances(self):
        engine, result = self.run_engine(deadline=0)
        assert result.blocked > 0
        assert result.offered == engine.stations.offered
        # Every offered request is admitted (completed or in flight)
        # or blocked; nothing is lost by the bookkeeping.
        admitted = engine.policy.admitted
        assert result.offered == admitted + result.blocked
        assert engine.stations.blocked == result.blocked
        assert result.blocking_probability == pytest.approx(
            result.blocked / result.offered
        )

    def test_longer_deadline_blocks_less(self):
        _, tight = self.run_engine(deadline=0)
        _, loose = self.run_engine(deadline=100)
        assert loose.blocked < tight.blocked

    def test_no_deadline_never_blocks(self):
        engine, result = self.run_engine(deadline=None)
        assert result.blocked == 0
        assert engine.blocked_total == 0

    def test_blocking_attributed_to_arrival_cohort(self):
        """Requests issued during warmup may only expire inside the
        measurement window; they must not count as blocked there, or
        the windowed blocking probability could exceed 1."""
        engine = IntervalEngine(
            policy=LossServerPolicy(1, service_intervals=50),
            stations=make_open(rate=0.5, deadline=25),
            interval_length=1.0,
        )
        result = engine.run(warmup_intervals=20, measure_intervals=300)
        assert 0 < result.blocked <= result.offered
        assert result.blocking_probability <= 1.0

    def test_waits_reflect_queueing(self):
        """With a deadline long enough to queue, admitted requests
        carry nonzero waits and the percentiles order correctly."""
        _, result = self.run_engine(deadline=200, rate=0.1, measure=5000)
        assert result.completed > 0
        assert (
            result.wait_p50_seconds
            <= result.wait_p95_seconds
            <= result.wait_p99_seconds
        )
        assert result.arrival == "poisson"
        summary = result.summary()
        assert summary["offered"] == result.offered
        assert "blocking_probability" in summary
