"""Tests for access distributions."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStream
from repro.workload.access import GeometricAccess, UniformAccess


class TestGeometricAccess:
    def test_samples_are_valid_ids(self, stream):
        access = GeometricAccess(list(range(100, 300)), mean=10.0, stream=stream)
        for _ in range(500):
            assert 100 <= access.sample() < 300

    def test_hotter_objects_sampled_more(self, stream):
        access = GeometricAccess(list(range(50)), mean=5.0, stream=stream)
        counts = {}
        for _ in range(20000):
            oid = access.sample()
            counts[oid] = counts.get(oid, 0) + 1
        assert counts.get(0, 0) > counts.get(10, 0) > counts.get(40, 0)

    def test_popularity_ranking_is_catalog_order(self, stream):
        ids = [5, 9, 1]
        access = GeometricAccess(ids, mean=10.0, stream=stream)
        assert access.popularity_ranking() == ids

    def test_working_set_grows_with_mean(self, stream):
        small = GeometricAccess(list(range(2000)), 10.0, stream).working_set()
        large = GeometricAccess(list(range(2000)), 43.5, stream).working_set()
        assert small < large

    def test_empty_ids_rejected(self, stream):
        with pytest.raises(ConfigurationError):
            GeometricAccess([], 10.0, stream)

    def test_deterministic_for_seed(self):
        a = GeometricAccess(list(range(100)), 10.0, RandomStream(1))
        b = GeometricAccess(list(range(100)), 10.0, RandomStream(1))
        assert [a.sample() for _ in range(20)] == [b.sample() for _ in range(20)]


class TestUniformAccess:
    def test_roughly_flat(self, stream):
        access = UniformAccess(list(range(10)), stream)
        counts = [0] * 10
        n = 20000
        for _ in range(n):
            counts[access.sample()] += 1
        for count in counts:
            assert count / n == pytest.approx(0.1, abs=0.02)

    def test_empty_rejected(self, stream):
        with pytest.raises(ConfigurationError):
            UniformAccess([], stream)
