"""Tests for request-trace recording and replay."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStream
from repro.workload.access import GeometricAccess
from repro.workload.trace import RecordingAccess, TraceAccess


class TestRecording:
    def test_records_every_sample(self, stream):
        recorder = RecordingAccess(
            GeometricAccess(list(range(20)), 2.0, stream)
        )
        drawn = [recorder.sample() for _ in range(50)]
        assert recorder.trace == drawn

    def test_ranking_delegates(self, stream):
        inner = GeometricAccess([9, 5, 1], 2.0, stream)
        recorder = RecordingAccess(inner)
        assert recorder.popularity_ranking() == [9, 5, 1]


class TestReplay:
    def test_replays_in_order(self):
        access = TraceAccess([3, 1, 4, 1, 5])
        assert [access.sample() for _ in range(5)] == [3, 1, 4, 1, 5]

    def test_cycles_by_default(self):
        access = TraceAccess([7, 8])
        assert [access.sample() for _ in range(5)] == [7, 8, 7, 8, 7]

    def test_exhaustion_raises_when_not_cycling(self):
        access = TraceAccess([7], cycle=False)
        access.sample()
        assert access.remaining == 0
        with pytest.raises(ConfigurationError):
            access.sample()

    def test_reset(self):
        access = TraceAccess([1, 2])
        access.sample()
        access.reset()
        assert access.sample() == 1

    def test_ranking_by_frequency(self):
        access = TraceAccess([5, 3, 5, 2, 3, 5])
        assert access.popularity_ranking() == [5, 3, 2]

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceAccess([])


class TestPairedReplay:
    def test_two_policies_see_identical_demand(self, stream):
        """Record a stream once, replay it against both techniques."""
        from repro.simulation.config import ScaledConfig
        from repro.simulation.engine import IntervalEngine
        from repro.simulation.runner import build_catalog, build_policy
        from repro.workload.stations import StationPool

        config = ScaledConfig(
            scale=50, num_stations=3, warmup_intervals=0,
            measure_intervals=400,
        )
        catalog = build_catalog(config)
        recorder = RecordingAccess(
            GeometricAccess(catalog.object_ids, 0.5, RandomStream(3))
        )
        trace = [recorder.sample() for _ in range(200)]

        streams = {}
        for technique in ("simple", "vdr"):
            access = TraceAccess(trace)
            policy = build_policy(config.with_(technique=technique), catalog)
            policy.preload(access.popularity_ranking()[: min(
                4, len(set(trace))
            )])
            stations = StationPool(num_stations=3, access=access)
            engine = IntervalEngine(
                policy=policy, stations=stations,
                interval_length=config.interval_length,
                technique=technique,
            )
            issued = []
            for _ in range(400):
                engine.step()
            issued = [
                s.outstanding.object_id
                for s in stations.stations
                if s.outstanding is not None
            ]
            streams[technique] = (
                sum(s.requests_issued for s in stations.stations),
                issued,
            )
        # Both techniques drew from the identical trace prefix.
        assert streams["simple"][0] > 0 and streams["vdr"][0] > 0