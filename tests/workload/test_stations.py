"""Tests for closed-loop display stations."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStream
from repro.workload.access import UniformAccess
from repro.workload.stations import StationPool


@pytest.fixture
def pool(stream):
    access = UniformAccess(list(range(5)), stream)
    return StationPool(num_stations=3, access=access)


class TestClosedLoop:
    def test_all_stations_issue_at_start(self, pool):
        requests = pool.ready_requests(0)
        assert len(requests) == 3
        assert {r.station_id for r in requests} == {0, 1, 2}

    def test_busy_station_does_not_reissue(self, pool):
        pool.ready_requests(0)
        assert pool.ready_requests(1) == []

    def test_completion_reissues_next_interval(self, pool):
        [request, *_] = pool.ready_requests(0)
        pool.complete(request, interval=10)
        assert pool.ready_requests(10) == []  # zero think, next interval
        reissued = pool.ready_requests(11)
        assert len(reissued) == 1
        assert reissued[0].station_id == request.station_id
        assert reissued[0].request_id != request.request_id

    def test_think_time_delays_reissue(self, stream):
        access = UniformAccess([0], stream)
        pool = StationPool(num_stations=1, access=access, think_intervals=5)
        [request] = pool.ready_requests(0)
        pool.complete(request, interval=10)
        assert pool.ready_requests(15) == []
        assert len(pool.ready_requests(16)) == 1

    def test_mismatched_completion_rejected(self, pool):
        [request, *_] = pool.ready_requests(0)
        pool.complete(request, 5)
        with pytest.raises(ConfigurationError):
            pool.complete(request, 6)

    def test_counters(self, pool):
        requests = pool.ready_requests(0)
        for request in requests:
            pool.complete(request, 3)
        assert pool.total_completed() == 3
        assert all(s.requests_issued == 1 for s in pool.stations)

    def test_request_ids_unique(self, pool):
        seen = set()
        for interval in range(0, 20, 2):
            for request in pool.ready_requests(interval):
                assert request.request_id not in seen
                seen.add(request.request_id)
                pool.complete(request, interval)


def test_validation(stream):
    access = UniformAccess([0], stream)
    with pytest.raises(ConfigurationError):
        StationPool(num_stations=0, access=access)
    with pytest.raises(ConfigurationError):
        StationPool(num_stations=1, access=access, think_intervals=-1)
