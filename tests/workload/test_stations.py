"""Tests for closed-loop display stations."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStream
from repro.workload.access import UniformAccess
from repro.workload.stations import StationPool


@pytest.fixture
def pool(stream):
    access = UniformAccess(list(range(5)), stream)
    return StationPool(num_stations=3, access=access)


class TestClosedLoop:
    def test_all_stations_issue_at_start(self, pool):
        requests = pool.ready_requests(0)
        assert len(requests) == 3
        assert {r.station_id for r in requests} == {0, 1, 2}

    def test_busy_station_does_not_reissue(self, pool):
        pool.ready_requests(0)
        assert pool.ready_requests(1) == []

    def test_completion_reissues_next_interval(self, pool):
        [request, *_] = pool.ready_requests(0)
        pool.complete(request, interval=10)
        assert pool.ready_requests(10) == []  # zero think, next interval
        reissued = pool.ready_requests(11)
        assert len(reissued) == 1
        assert reissued[0].station_id == request.station_id
        assert reissued[0].request_id != request.request_id

    def test_think_time_delays_reissue(self, stream):
        access = UniformAccess([0], stream)
        pool = StationPool(num_stations=1, access=access, think_intervals=5)
        [request] = pool.ready_requests(0)
        pool.complete(request, interval=10)
        assert pool.ready_requests(15) == []
        assert len(pool.ready_requests(16)) == 1

    def test_mismatched_completion_rejected(self, pool):
        [request, *_] = pool.ready_requests(0)
        pool.complete(request, 5)
        with pytest.raises(ConfigurationError):
            pool.complete(request, 6)

    def test_counters(self, pool):
        requests = pool.ready_requests(0)
        for request in requests:
            pool.complete(request, 3)
        assert pool.total_completed() == 3
        assert all(s.requests_issued == 1 for s in pool.stations)

    def test_request_ids_unique(self, pool):
        seen = set()
        for interval in range(0, 20, 2):
            for request in pool.ready_requests(interval):
                assert request.request_id not in seen
                seen.add(request.request_id)
                pool.complete(request, interval)


def test_validation(stream):
    access = UniformAccess([0], stream)
    with pytest.raises(ConfigurationError):
        StationPool(num_stations=0, access=access)
    with pytest.raises(ConfigurationError):
        StationPool(num_stations=1, access=access, think_intervals=-1)


class TestHeapEquivalence:
    """The batched pool's idle heap must issue exactly the requests,
    in exactly the order (hence with exactly the RNG draws), of the
    scalar station scan — over arbitrary complete/idle interleavings,
    including non-monotone interval queries."""

    def _pools(self, num_stations, think):
        pools = []
        for batched in (False, True):
            access = UniformAccess(list(range(7)), RandomStream(seed=99))
            pools.append(
                StationPool(
                    num_stations=num_stations,
                    access=access,
                    think_intervals=think,
                    batched=batched,
                )
            )
        return pools

    def _assert_same_requests(self, a, b):
        assert [
            (r.request_id, r.station_id, r.object_id) for r in a
        ] == [(r.request_id, r.station_id, r.object_id) for r in b]

    @pytest.mark.parametrize("think", [0, 3])
    def test_lockstep_issue_and_complete(self, think):
        scalar, batched = self._pools(8, think)
        import random

        rng = random.Random(4)
        inflight = []
        interval = 0
        for _step in range(200):
            interval += rng.choice([0, 1, 1, 2])
            got_s = scalar.ready_requests(interval)
            got_b = batched.ready_requests(interval)
            self._assert_same_requests(got_s, got_b)
            inflight.extend(zip(got_s, got_b))
            rng.shuffle(inflight)
            for _ in range(rng.randrange(len(inflight) + 1)):
                req_s, req_b = inflight.pop()
                done = interval + rng.randrange(4)
                scalar.complete(req_s, done)
                batched.complete(req_b, done)
        assert scalar.total_completed() == batched.total_completed()

    def test_ascending_station_order_among_due(self):
        """Stations becoming ready at the same interval issue in
        station-id order on both paths (the RNG-draw order)."""
        scalar, batched = self._pools(6, 0)
        for pool in (scalar, batched):
            requests = pool.ready_requests(0)
            # Complete in reverse station order; reissue order must
            # still be ascending by station id.
            for request in sorted(
                requests, key=lambda r: -r.station_id
            ):
                pool.complete(request, interval=5)
        got_s = scalar.ready_requests(6)
        got_b = batched.ready_requests(6)
        assert [r.station_id for r in got_s] == [0, 1, 2, 3, 4, 5]
        self._assert_same_requests(got_s, got_b)

    def test_repeated_query_same_interval_is_stable(self):
        scalar, batched = self._pools(4, 0)
        assert len(batched.ready_requests(0)) == 4
        assert batched.ready_requests(0) == []
        assert scalar.ready_requests(0) and scalar.ready_requests(0) == []
