"""Closed-workload regression gate.

The open-workload generalisation must leave every closed run exactly
as the seed produced it: same builder output, same RNG consumption,
same result rows, same summary columns.  The golden suite
(tests/golden) pins the full fixtures; this file pins the *mechanism*
— so a regression points at the violated guarantee instead of at a
fixture diff.
"""

from __future__ import annotations

from repro.simulation.config import ScaledConfig
from repro.simulation.results import SimulationResult
from repro.simulation.runner import (
    build_access,
    build_arrivals,
    build_engine,
    cached_catalog,
    run_experiment,
)
from repro.sim.rng import RandomStream
from repro.workload.stations import StationPool

#: The seed's summary columns for a closed striping run — the open
#: generalisation must not add, drop, or reorder any of them.
CLOSED_SUMMARY_KEYS = [
    "technique",
    "stations",
    "access_mean",
    "completed",
    "throughput_per_hour",
    "mean_latency_s",
    "max_latency_s",
    "mean_concurrent",
    "max_concurrent",
    "mean_busy_fraction",
]


def closed_config():
    return ScaledConfig(scale=50).with_(access_mean=0.2, num_stations=4)


class TestClosedBuildUnchanged:
    def test_closed_config_builds_a_station_pool(self):
        config = closed_config()
        catalog = cached_catalog(config)
        stream = RandomStream(seed=config.seed)
        access = build_access(config, catalog, stream.fork(1))
        stations = build_arrivals(config, access, stream)
        assert type(stations) is StationPool
        assert len(stations) == config.num_stations
        assert stations.is_open is False
        assert stations.deadline_intervals is None

    def test_closed_build_draws_nothing_from_the_run_stream(self):
        """StationPool construction consumes no variates: the stream
        state after building arrivals equals the state right after the
        access fork — adding the open machinery cannot have shifted
        any closed draw."""
        config = closed_config()
        catalog = cached_catalog(config)

        stream = RandomStream(seed=config.seed)
        build_arrivals(
            config, build_access(config, catalog, stream.fork(1)), stream
        )
        untouched = RandomStream(seed=config.seed)
        untouched.fork(1)
        assert (
            stream._rng.getstate() == untouched._rng.getstate()
        )

    def test_closed_engine_uses_the_closed_step_path(self):
        engine = build_engine(closed_config())
        assert engine._is_open is False
        # The hot path is the class-level `step`, not an instance
        # override (no per-interval open bookkeeping).
        assert "step" not in engine.__dict__


class TestClosedResultRowsUnchanged:
    def test_closed_run_reports_closed_defaults(self):
        result = run_experiment(closed_config())
        assert result.arrival == "closed"
        assert result.offered == 0
        assert result.blocked == 0
        assert result.blocking_probability == 0.0

    def test_closed_summary_keys_are_the_seed_columns(self):
        """Summaries feed the golden fixtures and `--output` exports:
        closed rows must carry exactly the pre-open columns (plus the
        policy's own stats), in the same order."""
        result = run_experiment(closed_config())
        keys = list(result.summary())
        policy_keys = list(result.policy_stats)
        assert keys == CLOSED_SUMMARY_KEYS + policy_keys
        for open_key in (
            "arrival",
            "offered",
            "blocked",
            "blocking_probability",
            "wait_p50_s",
            "carried_load",
        ):
            assert open_key not in keys

    def test_closed_describe_has_no_open_tokens(self):
        text = closed_config().describe()
        for token in ("arrival", "rate", "deadline", "burst", "zipf"):
            assert token not in text

    def test_legacy_payload_round_trips(self):
        """Cached result payloads written before the open fields
        existed must still load (with closed defaults)."""
        result = run_experiment(closed_config())
        payload = result.to_dict()
        for key in ("arrival", "offered", "blocked"):
            payload.pop(key)
        revived = SimulationResult.from_dict(payload)
        assert revived.arrival == "closed"
        assert revived.offered == 0
        assert revived.blocked == 0
        assert revived.summary() == result.summary()

    def test_closed_runs_reproducible(self):
        first = run_experiment(closed_config())
        second = run_experiment(closed_config())
        assert first.to_dict() == second.to_dict()
