"""Analytic validation: the open engine against closed-form theory.

These tests drive the *real* machinery end to end — `OpenArrivals`
feeding `IntervalEngine`, deadline expiry, `try_cancel` blocking —
with the minimal server-bank policies of
:mod:`repro.workload.analytic`, and check the simulated statistics
against classical teletraffic closed forms:

* blocking probability of a pure loss system vs **Erlang-B** at three
  offered loads (below, at, and above capacity);
* mean queueing delay of an ``M/M/c`` queue vs the **Erlang-C** wait
  formula.

Each comparison replicates the run over independent seeds and accepts
the closed form when it lies within three standard errors of the
replication mean, plus a small absolute floor for the one-interval
quantisation of the clock (arrival times are exact but admission and
service boundaries land on interval edges).  See docs/workloads.md.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import RandomStream
from repro.simulation.engine import IntervalEngine
from repro.workload.access import UniformAccess
from repro.workload.analytic import (
    LossServerPolicy,
    QueueServerPolicy,
    erlang_b,
    erlang_c,
    mmc_mean_wait,
)
from repro.workload.arrivals import OpenArrivals, PoissonSource

SEEDS = (11, 23, 37, 51, 73)


def mean_and_stderr(values):
    """Replication mean and its standard error."""
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(variance / n)


def open_arrivals(rate: float, seed: int, deadline: int) -> OpenArrivals:
    stream = RandomStream(seed)
    return OpenArrivals(
        source=PoissonSource(rate, stream.substream("workload.arrivals")),
        access=UniformAccess([0], stream.substream("workload.access")),
        interval_length=1.0,
        deadline_intervals=deadline,
        kind="poisson",
    )


class TestErlangBClosedForm:
    def test_matches_direct_sum(self):
        """The stable recurrence equals the textbook ratio
        ``(a^c / c!) / sum_k a^k / k!``."""
        for servers, offered in [(1, 0.5), (4, 3.2), (8, 8.0), (12, 15.0)]:
            terms = [
                offered**k / math.factorial(k) for k in range(servers + 1)
            ]
            direct = terms[-1] / sum(terms)
            assert erlang_b(servers, offered) == pytest.approx(
                direct, rel=1e-12
            )

    def test_boundaries(self):
        assert erlang_b(1, 1.0) == pytest.approx(0.5)
        assert erlang_b(5, 0.0) == 0.0
        assert erlang_b(5, 2.0) > erlang_b(10, 2.0)  # more servers help

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            erlang_b(0, 1.0)
        with pytest.raises(ConfigurationError):
            erlang_b(4, -0.1)


class TestErlangCClosedForm:
    def test_requires_stability(self):
        with pytest.raises(ConfigurationError):
            erlang_c(4, 4.0)

    def test_waiting_probability_exceeds_blocking(self):
        """C(c, a) >= B(c, a): queueing makes waiting more likely than
        a loss system makes blocking."""
        for servers, offered in [(2, 1.0), (4, 3.2), (8, 6.0)]:
            assert erlang_c(servers, offered) >= erlang_b(servers, offered)

    def test_mean_wait_shrinks_with_servers(self):
        waits = [mmc_mean_wait(c, 0.08, 40.0) for c in (4, 6, 8)]
        assert waits[0] > waits[1] > waits[2] > 0


class TestBlockingMatchesErlangB:
    """An M/D/c/c loss system through the full open-engine path.

    `LossServerPolicy` holds each admitted display for a fixed
    ``service`` intervals; ``deadline_intervals=0`` turns any arrival
    that cannot be admitted in its own interval into a blocked
    customer.  By Erlang insensitivity the blocking probability
    depends on the service distribution only through its mean, so the
    deterministic holding time is exactly the Erlang-B regime.
    """

    SERVERS = 8
    SERVICE = 100  # intervals; interval_length = 1 s

    def simulate_blocking(self, offered_erlangs: float, seed: int) -> float:
        rate = offered_erlangs / self.SERVICE
        engine = IntervalEngine(
            policy=LossServerPolicy(self.SERVERS, self.SERVICE),
            stations=open_arrivals(rate, seed, deadline=0),
            interval_length=1.0,
        )
        result = engine.run(warmup_intervals=500, measure_intervals=15000)
        assert result.offered > 0
        return result.blocking_probability

    @pytest.mark.parametrize("utilisation", [0.6, 1.0, 1.4])
    def test_blocking_within_ci(self, utilisation):
        offered = utilisation * self.SERVERS
        expected = erlang_b(self.SERVERS, offered)
        samples = [
            self.simulate_blocking(offered, seed) for seed in SEEDS
        ]
        mean, stderr = mean_and_stderr(samples)
        # Three standard errors, floored at one percentage point for
        # the interval quantisation of admissions.
        tolerance = max(3.0 * stderr, 0.01)
        assert abs(mean - expected) <= tolerance, (
            f"a={offered}: simulated {mean:.4f} +/- {stderr:.4f} vs "
            f"Erlang-B {expected:.4f}"
        )

    def test_blocking_increases_with_load(self):
        samples = [
            self.simulate_blocking(u * self.SERVERS, SEEDS[0])
            for u in (0.6, 1.0, 1.4)
        ]
        assert samples[0] < samples[1] < samples[2]


class TestMeanWaitMatchesMMc:
    """An M/M/c queue through the full open-engine path.

    `QueueServerPolicy` draws exponential holding times and queues
    without bound (no deadline), so the admission wait the engine
    reports as startup latency is the M/M/c queueing delay ``W_q``.
    """

    SERVERS = 4
    MEAN_SERVICE = 40.0  # intervals; interval_length = 1 s

    def simulate_mean_wait(self, rho: float, seed: int) -> float:
        rate = rho * self.SERVERS / self.MEAN_SERVICE
        stream = RandomStream(seed)
        engine = IntervalEngine(
            policy=QueueServerPolicy(
                self.SERVERS,
                self.MEAN_SERVICE,
                stream.substream("workload.service"),
            ),
            stations=OpenArrivals(
                source=PoissonSource(
                    rate, stream.substream("workload.arrivals")
                ),
                access=UniformAccess(
                    [0], stream.substream("workload.access")
                ),
                interval_length=1.0,
                kind="poisson",
            ),
            interval_length=1.0,
        )
        result = engine.run(warmup_intervals=2000, measure_intervals=20000)
        assert result.completed > 0
        return result.mean_startup_latency_seconds

    @pytest.mark.parametrize("rho", [0.5, 0.7])
    def test_mean_wait_within_ci(self, rho):
        rate = rho * self.SERVERS / self.MEAN_SERVICE
        expected = mmc_mean_wait(self.SERVERS, rate, self.MEAN_SERVICE)
        samples = [self.simulate_mean_wait(rho, seed) for seed in SEEDS]
        mean, stderr = mean_and_stderr(samples)
        # Three standard errors, floored at one interval for the
        # quantisation of service boundaries to the clock.
        tolerance = max(3.0 * stderr, 1.0)
        assert abs(mean - expected) <= tolerance, (
            f"rho={rho}: simulated {mean:.2f}s +/- {stderr:.2f} vs "
            f"M/M/c {expected:.2f}s"
        )

    def test_wait_grows_with_load(self):
        assert self.simulate_mean_wait(0.7, SEEDS[0]) > (
            self.simulate_mean_wait(0.5, SEEDS[0])
        )
