"""Property-based tests (hypothesis) for the arrival statistics.

The open engine is only as good as its variates.  Across randomly
drawn parameters:

* Poisson interarrival gaps have the right mean and unit coefficient
  of variation (the exponential signature);
* Zipf access frequencies are monotone in rank and match the
  configured exponent;
* MMPP phase occupancy converges to the closed-form stationary
  distribution of the modulating chain;
* every statistic is reproducible from the seed alone.
"""

from __future__ import annotations

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.sim.rng import RandomStream  # noqa: E402
from repro.workload.access import ZipfAccess, zipf_pmf  # noqa: E402
from repro.workload.arrivals import MMPPSource, PoissonSource  # noqa: E402

seeds = st.integers(min_value=0, max_value=2**31 - 1)
rates = st.floats(
    min_value=0.1, max_value=20.0, allow_nan=False, allow_infinity=False
)
exponents = st.floats(
    min_value=0.3, max_value=2.5, allow_nan=False, allow_infinity=False
)


def interarrivals(source, count):
    times = [source.next_time() for _ in range(count)]
    return [b - a for a, b in zip([0.0] + times, times)]


class TestPoissonInterarrivals:
    @given(rate=rates, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_mean_matches_rate(self, rate, seed):
        gaps = interarrivals(
            PoissonSource(rate, RandomStream(seed)), 3000
        )
        mean = sum(gaps) / len(gaps)
        # Std error of the mean of n exponentials is mean/sqrt(n);
        # accept four standard errors.
        assert mean == pytest.approx(
            1.0 / rate, rel=4.0 / math.sqrt(len(gaps))
        )

    @given(rate=rates, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_unit_coefficient_of_variation(self, rate, seed):
        """CV = 1 is the memorylessness signature separating Poisson
        from clumped (CV > 1) or regular (CV < 1) traffic."""
        gaps = interarrivals(
            PoissonSource(rate, RandomStream(seed)), 3000
        )
        mean = sum(gaps) / len(gaps)
        variance = sum((g - mean) ** 2 for g in gaps) / (len(gaps) - 1)
        assert math.sqrt(variance) / mean == pytest.approx(1.0, abs=0.12)

    @given(rate=rates, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_reproducible_from_seed(self, rate, seed):
        first = interarrivals(PoissonSource(rate, RandomStream(seed)), 50)
        second = interarrivals(PoissonSource(rate, RandomStream(seed)), 50)
        assert first == second


class TestZipfSkew:
    @given(exponent=exponents, limit=st.integers(2, 200))
    @settings(max_examples=50, deadline=None)
    def test_pmf_strictly_monotone_in_rank(self, exponent, limit):
        pmf = zipf_pmf(exponent, limit)
        assert all(a > b for a, b in zip(pmf, pmf[1:]))
        assert sum(pmf) == pytest.approx(1.0)

    @given(exponent=exponents, limit=st.integers(2, 200))
    @settings(max_examples=50, deadline=None)
    def test_rank_ratios_match_exponent(self, exponent, limit):
        """P(rank i) / P(rank j) == ((j+1)/(i+1))^s — the defining
        power law, so the pmf encodes exactly the configured
        exponent."""
        pmf = zipf_pmf(exponent, limit)
        j = limit - 1
        expected = ((j + 1) / 1.0) ** exponent
        assert pmf[0] / pmf[j] == pytest.approx(expected, rel=1e-9)

    @given(exponent=exponents, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_sampled_frequencies_monotone(self, exponent, seed):
        """Observed head/mid/tail frequencies order by rank."""
        access = ZipfAccess(list(range(30)), exponent, RandomStream(seed))
        counts = [0] * 30
        for _ in range(6000):
            counts[access.sample()] += 1
        head = sum(counts[:3])
        mid = sum(counts[10:13])
        tail = sum(counts[27:30])
        assert head > mid > tail

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_steeper_exponent_concentrates_head(self, seed):
        flat = zipf_pmf(0.5, 100)
        steep = zipf_pmf(1.5, 100)
        assert steep[0] > flat[0]
        assert sum(steep[:10]) > sum(flat[:10])
        shallow = ZipfAccess(list(range(50)), 0.4, RandomStream(seed))
        sharp = ZipfAccess(list(range(50)), 2.0, RandomStream(seed + 1))
        top_shallow = sum(
            1 for _ in range(4000) if shallow.sample() < 5
        )
        top_sharp = sum(1 for _ in range(4000) if sharp.sample() < 5)
        assert top_sharp > top_shallow


class TestMMPPOccupancy:
    @given(
        seed=seeds,
        rate_pair=st.tuples(
            st.floats(0.5, 5.0, allow_nan=False),
            st.floats(0.5, 5.0, allow_nan=False),
        ),
        sojourn_pair=st.tuples(
            st.floats(2.0, 10.0, allow_nan=False),
            st.floats(2.0, 10.0, allow_nan=False),
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_phase_occupancy_matches_stationary(
        self, seed, rate_pair, sojourn_pair
    ):
        """Long-run time-in-phase fractions converge to
        ``sojourn_i / sum(sojourns)`` — the stationary distribution of
        the cyclic modulating chain."""
        source = MMPPSource(
            list(rate_pair),
            list(sojourn_pair),
            RandomStream(seed).substream("workload.arrivals"),
            RandomStream(seed).substream("workload.mmpp"),
        )
        horizon = 400.0 * max(sojourn_pair)
        while source.next_time() < horizon:
            pass
        total = sum(source.time_in_phase)
        occupancy = [t / total for t in source.time_in_phase]
        # For an alternating renewal process with exponential sojourns
        # (cv = 1), the occupancy estimator's standard deviation over
        # n cycles is about p(1-p)·sqrt(2/n).  Hypothesis actively
        # hunts for statistical tails across examples, so accept five
        # standard deviations (with a small floor).
        cycles = total / sum(sojourn_pair)
        for observed, expected in zip(
            occupancy, source.stationary_distribution()
        ):
            sigma = expected * (1 - expected) * math.sqrt(2.0 / cycles)
            assert observed == pytest.approx(
                expected, abs=max(5.0 * sigma, 0.02)
            )

    @given(seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_reproducible_from_seed(self, seed):
        def build():
            return MMPPSource(
                [1.0, 4.0],
                [5.0, 15.0],
                RandomStream(seed).substream("workload.arrivals"),
                RandomStream(seed).substream("workload.mmpp"),
            )

        first_source, second_source = build(), build()
        first = [first_source.next_time() for _ in range(200)]
        second = [second_source.next_time() for _ in range(200)]
        assert first == second
        assert first_source.time_in_phase == second_source.time_in_phase

    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_bursty_mmpp_has_supra_poisson_variation(self, seed):
        """A strongly modulated MMPP is burstier than Poisson: the
        interarrival CV must exceed 1."""
        source = MMPPSource(
            [0.2, 10.0],
            [50.0, 50.0],
            RandomStream(seed).substream("workload.arrivals"),
            RandomStream(seed).substream("workload.mmpp"),
        )
        gaps = interarrivals(source, 4000)
        mean = sum(gaps) / len(gaps)
        variance = sum((g - mean) ** 2 for g in gaps) / (len(gaps) - 1)
        assert math.sqrt(variance) / mean > 1.15
