"""Tests for the disk array: storage accounting and interval claims."""

from __future__ import annotations

import pytest

from repro.errors import (
    CapacityError,
    ConfigurationError,
    FaultError,
    SchedulingError,
)
from repro.hardware.disk import TABLE3_DISK
from repro.hardware.disk_array import DiskArray, SLOTS_PER_DISK


@pytest.fixture
def array():
    return DiskArray(model=TABLE3_DISK, num_disks=6)


class TestStorage:
    def test_total_capacity(self, array):
        assert array.total_capacity == pytest.approx(6 * TABLE3_DISK.capacity)

    def test_store_and_evict_roundtrip(self, array):
        array.store(2, 100.0)
        assert array.used_cylinders(2) == 100.0
        array.evict(2, 60.0)
        assert array.used_cylinders(2) == pytest.approx(40.0)
        assert array.free_cylinders(2) == pytest.approx(
            TABLE3_DISK.num_cylinders - 40.0
        )

    def test_overflow_rejected(self, array):
        with pytest.raises(CapacityError):
            array.store(0, TABLE3_DISK.num_cylinders + 1)

    def test_underflow_rejected(self, array):
        array.store(0, 5.0)
        with pytest.raises(CapacityError):
            array.evict(0, 6.0)

    def test_storage_skew(self, array):
        array.store(0, 10.0)
        array.store(1, 30.0)
        low, high = array.storage_skew()
        assert low == 0.0
        assert high == 30.0


class TestIntervalClaims:
    def test_full_claim_marks_disk_busy(self, array):
        array.begin_interval()
        array.claim(3, owner="d1")
        assert not array.is_idle(3)
        assert array.free_slots(3) == 0

    def test_half_claims_share_a_disk(self, array):
        array.begin_interval()
        array.claim(1, owner="a", slots=1)
        array.claim(1, owner="b", slots=1)
        assert array.free_slots(1) == 0

    def test_oversubscription_raises(self, array):
        array.begin_interval()
        array.claim(0, owner="a")
        with pytest.raises(SchedulingError):
            array.claim(0, owner="b", slots=1)

    def test_invalid_slot_count_raises(self, array):
        array.begin_interval()
        with pytest.raises(SchedulingError):
            array.claim(0, owner="a", slots=3)

    def test_begin_interval_clears_claims(self, array):
        array.begin_interval()
        array.claim(0, owner="a")
        array.begin_interval()
        assert array.is_idle(0)
        array.claim(0, owner="b")  # no conflict with the stale claim

    def test_release_frees_slots_within_interval(self, array):
        array.begin_interval()
        array.claim(0, owner="a")
        array.release(0, owner="a")
        array.claim(0, owner="b")

    def test_idle_and_busy_lists(self, array):
        array.begin_interval()
        array.claim(0, owner="a")
        array.claim(4, owner="b", slots=1)
        assert array.busy_disks() == [0, 4]
        assert 0 not in array.idle_disks()
        assert 1 in array.idle_disks()


class TestFailures:
    def test_failed_drive_rejects_claims(self, array):
        array.begin_interval()
        array.fail(2)
        assert array.free_slots(2) == 0
        assert array.is_failed(2)
        assert array.failed_disks() == [2]
        with pytest.raises(FaultError):
            array.claim(2, owner="a", slots=1)

    def test_fail_reports_the_rebuild_work(self, array):
        array.store(2, 100.0)
        assert array.fail(2) == pytest.approx(100.0)

    def test_fail_drops_in_flight_claims(self, array):
        array.begin_interval()
        array.claim(2, owner="a")
        array.claim(3, owner="b", slots=1)
        array.fail(2)
        assert array.is_idle(2)
        # The surviving drive's claim is untouched.
        assert array.free_slots(3) == 1

    def test_double_fail_and_stray_repair_rejected(self, array):
        array.fail(2)
        with pytest.raises(FaultError):
            array.fail(2)
        with pytest.raises(FaultError):
            array.repair(0)

    def test_repair_restores_claimability(self, array):
        array.begin_interval()
        array.fail(2)
        array.repair(2)
        assert not array.is_failed(2)
        assert array.free_slots(2) == SLOTS_PER_DISK
        array.claim(2, owner="a")


class TestReconstructionClaims:
    def test_charges_every_survivor(self, array):
        array.begin_interval()
        array.fail(2)
        array.reconstruction_claim(2, owner="r", survivors=[0, 1, 3], halves=1)
        for survivor in (0, 1, 3):
            assert array.free_slots(survivor) == SLOTS_PER_DISK - 1

    def test_rejected_for_a_healthy_drive(self, array):
        array.begin_interval()
        with pytest.raises(FaultError):
            array.reconstruction_claim(2, owner="r", survivors=[3])

    def test_rejected_without_survivors(self, array):
        array.begin_interval()
        array.fail(2)
        with pytest.raises(FaultError):
            array.reconstruction_claim(2, owner="r", survivors=[])

    def test_atomic_when_a_survivor_is_saturated(self, array):
        array.begin_interval()
        array.fail(2)
        array.claim(3, owner="display")  # both half-slots taken
        with pytest.raises(SchedulingError):
            array.reconstruction_claim(2, owner="r", survivors=[0, 1, 3])
        # Nothing was charged to the drives checked before the full one.
        assert array.free_slots(0) == SLOTS_PER_DISK
        assert array.free_slots(1) == SLOTS_PER_DISK

    def test_rejected_when_a_survivor_is_failed(self, array):
        array.begin_interval()
        array.fail(2)
        array.fail(3)
        with pytest.raises(SchedulingError):
            array.reconstruction_claim(2, owner="r", survivors=[3])


class TestUtilization:
    def test_zero_before_any_interval(self, array):
        assert array.utilization() == 0.0

    def test_counts_claimed_slot_fraction(self, array):
        array.begin_interval()
        for disk in range(3):
            array.claim(disk, owner=f"d{disk}")  # 6 of 12 half-slots
        array.begin_interval()  # closes the first interval
        # 6 of 24 half-slot-intervals claimed across the two intervals.
        assert array.utilization() == pytest.approx(0.25)


def test_rejects_empty_array():
    with pytest.raises(ConfigurationError):
        DiskArray(model=TABLE3_DISK, num_disks=0)
