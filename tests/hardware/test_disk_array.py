"""Tests for the disk array: storage accounting and interval claims."""

from __future__ import annotations

import pytest

from repro.errors import CapacityError, ConfigurationError, SchedulingError
from repro.hardware.disk import TABLE3_DISK
from repro.hardware.disk_array import DiskArray, SLOTS_PER_DISK


@pytest.fixture
def array():
    return DiskArray(model=TABLE3_DISK, num_disks=6)


class TestStorage:
    def test_total_capacity(self, array):
        assert array.total_capacity == pytest.approx(6 * TABLE3_DISK.capacity)

    def test_store_and_evict_roundtrip(self, array):
        array.store(2, 100.0)
        assert array.used_cylinders(2) == 100.0
        array.evict(2, 60.0)
        assert array.used_cylinders(2) == pytest.approx(40.0)
        assert array.free_cylinders(2) == pytest.approx(
            TABLE3_DISK.num_cylinders - 40.0
        )

    def test_overflow_rejected(self, array):
        with pytest.raises(CapacityError):
            array.store(0, TABLE3_DISK.num_cylinders + 1)

    def test_underflow_rejected(self, array):
        array.store(0, 5.0)
        with pytest.raises(CapacityError):
            array.evict(0, 6.0)

    def test_storage_skew(self, array):
        array.store(0, 10.0)
        array.store(1, 30.0)
        low, high = array.storage_skew()
        assert low == 0.0
        assert high == 30.0


class TestIntervalClaims:
    def test_full_claim_marks_disk_busy(self, array):
        array.begin_interval()
        array.claim(3, owner="d1")
        assert not array.is_idle(3)
        assert array.free_slots(3) == 0

    def test_half_claims_share_a_disk(self, array):
        array.begin_interval()
        array.claim(1, owner="a", slots=1)
        array.claim(1, owner="b", slots=1)
        assert array.free_slots(1) == 0

    def test_oversubscription_raises(self, array):
        array.begin_interval()
        array.claim(0, owner="a")
        with pytest.raises(SchedulingError):
            array.claim(0, owner="b", slots=1)

    def test_invalid_slot_count_raises(self, array):
        array.begin_interval()
        with pytest.raises(SchedulingError):
            array.claim(0, owner="a", slots=3)

    def test_begin_interval_clears_claims(self, array):
        array.begin_interval()
        array.claim(0, owner="a")
        array.begin_interval()
        assert array.is_idle(0)
        array.claim(0, owner="b")  # no conflict with the stale claim

    def test_release_frees_slots_within_interval(self, array):
        array.begin_interval()
        array.claim(0, owner="a")
        array.release(0, owner="a")
        array.claim(0, owner="b")

    def test_idle_and_busy_lists(self, array):
        array.begin_interval()
        array.claim(0, owner="a")
        array.claim(4, owner="b", slots=1)
        assert array.busy_disks() == [0, 4]
        assert 0 not in array.idle_disks()
        assert 1 in array.idle_disks()


class TestUtilization:
    def test_zero_before_any_interval(self, array):
        assert array.utilization() == 0.0

    def test_counts_claimed_slot_fraction(self, array):
        array.begin_interval()
        for disk in range(3):
            array.claim(disk, owner=f"d{disk}")  # 6 of 12 half-slots
        array.begin_interval()  # closes the first interval
        # 6 of 24 half-slot-intervals claimed across the two intervals.
        assert array.utilization() == pytest.approx(0.25)


def test_rejects_empty_array():
    with pytest.raises(ConfigurationError):
        DiskArray(model=TABLE3_DISK, num_disks=0)
