"""Tests for buffer memory accounting (Equation 1 + staging buffers)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.hardware.memory import BufferPool, BufferedFragment, minimum_display_memory


class TestEquationOne:
    def test_formula(self):
        # B_disk x (T_switch + T_sector)
        assert minimum_display_memory(20.0, 0.05183, 0.001) == pytest.approx(
            20.0 * 0.05283
        )

    def test_validates_inputs(self):
        with pytest.raises(ConfigurationError):
            minimum_display_memory(0.0, 0.05, 0.001)
        with pytest.raises(ConfigurationError):
            minimum_display_memory(20.0, -0.05, 0.001)


def fragment(owner="d1", subobject=0, frag=0, size=12.0, interval=0):
    return BufferedFragment(
        owner=owner,
        subobject=subobject,
        fragment=frag,
        size=size,
        staged_at_interval=interval,
    )


class TestBufferPool:
    def test_stage_and_drain_roundtrip(self):
        pool = BufferPool(num_nodes=4)
        pool.stage(1, fragment(subobject=3))
        assert pool.occupancy(1) == pytest.approx(12.0)
        staged = pool.drain(1, "d1", 3)
        assert staged.subobject == 3
        assert pool.occupancy(1) == 0.0
        assert pool.outstanding() == 0

    def test_drain_missing_raises(self):
        pool = BufferPool(num_nodes=2)
        with pytest.raises(SchedulingError):
            pool.drain(0, "nobody", 0)

    def test_drain_oldest_respects_fifo(self):
        pool = BufferPool(num_nodes=1)
        pool.stage(0, fragment(subobject=0, interval=0))
        pool.stage(0, fragment(subobject=1, interval=1))
        assert pool.drain_oldest(0, "d1").subobject == 0
        assert pool.drain_oldest(0, "d1").subobject == 1

    def test_capacity_enforced(self):
        pool = BufferPool(num_nodes=1, capacity_per_node=20.0)
        pool.stage(0, fragment(size=12.0))
        with pytest.raises(SchedulingError):
            pool.stage(0, fragment(subobject=1, size=12.0))

    def test_peak_occupancy_tracked(self):
        pool = BufferPool(num_nodes=1)
        pool.stage(0, fragment(subobject=0))
        pool.stage(0, fragment(subobject=1))
        pool.drain(0, "d1", 0)
        assert pool.peak_occupancy == pytest.approx(24.0)

    def test_release_owner_discards_everything(self):
        pool = BufferPool(num_nodes=2)
        pool.stage(0, fragment(owner="a", subobject=0))
        pool.stage(1, fragment(owner="a", subobject=1))
        pool.stage(1, fragment(owner="b", subobject=0))
        assert pool.release_owner("a") == 2
        assert pool.outstanding() == 1
        assert pool.occupancy(1) == pytest.approx(12.0)

    def test_snapshot_lists_nonempty_nodes(self):
        pool = BufferPool(num_nodes=3)
        pool.stage(2, fragment())
        snapshot = pool.snapshot()
        assert list(snapshot) == [2]
        count, megabits = snapshot[2]
        assert count == 1
        assert megabits == pytest.approx(12.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BufferPool(num_nodes=0)
        with pytest.raises(ConfigurationError):
            BufferPool(num_nodes=1, capacity_per_node=0.0)
