"""Tests for network demand accounting."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hardware.network import NetworkModel


def test_transmit_accumulates_per_node():
    net = NetworkModel(num_nodes=3)
    net.begin_interval()
    net.transmit(0, 20.0)
    net.transmit(0, 20.0)  # buffered + pipelined fragment
    assert net.node_demand(0) == pytest.approx(40.0)
    assert net.peak_node_demand == pytest.approx(40.0)


def test_aggregate_peak_across_intervals():
    net = NetworkModel(num_nodes=2)
    net.begin_interval()
    net.transmit(0, 20.0)
    net.transmit(1, 20.0)
    net.begin_interval()
    net.transmit(0, 10.0)
    net.begin_interval()
    assert net.peak_aggregate_demand == pytest.approx(40.0)
    assert net.mean_aggregate_demand() == pytest.approx((40.0 + 10.0) / 2)


def test_overcommit_detection():
    net = NetworkModel(num_nodes=1, node_capacity=25.0)
    net.begin_interval()
    net.transmit(0, 40.0)
    net.begin_interval()
    assert net.overcommitted_intervals == 1
    report = net.report()
    assert report["overcommitted_intervals"] == 1.0


def test_negative_rate_rejected():
    net = NetworkModel(num_nodes=1)
    net.begin_interval()
    with pytest.raises(ConfigurationError):
        net.transmit(0, -1.0)


def test_validation():
    with pytest.raises(ConfigurationError):
        NetworkModel(num_nodes=0)
    with pytest.raises(ConfigurationError):
        NetworkModel(num_nodes=1, node_capacity=0.0)
