"""Property tests for the incremental occupancy indexes.

The indexes (:class:`repro.core.virtual_disks.SlotPool`'s free-half
array, capacity buckets and free-half total; :class:`DiskArray`'s
claimed/failed running counts) are pure acceleration: after *any*
sequence of claims, releases, failures and repairs they must answer
every query exactly as a brute-force rescan of the ownership maps
would.  Hypothesis drives random operation sequences against both and
checks equivalence after every step.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.virtual_disks import HALVES_PER_SLOT, SlotPool
from repro.errors import FaultError, SchedulingError
from repro.hardware.disk import TABLE3_DISK
from repro.hardware.disk_array import SLOTS_PER_DISK, DiskArray
from repro.sim.sanitize import Sanitizer

# One operation: (kind, slot/disk selector, owner selector, halves).
# Selectors are reduced modulo the current domain inside the test so
# shrinking stays effective.
ops = st.lists(
    st.tuples(
        st.sampled_from(["claim", "release", "release_all", "fail", "repair"]),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=1, max_value=HALVES_PER_SLOT),
    ),
    max_size=60,
)


def pool_brute_force_free(pool: SlotPool) -> list:
    return [
        HALVES_PER_SLOT - sum(pool._owners.get(z, {}).values())
        for z in range(pool.num_disks)
    ]


def assert_pool_index_consistent(pool: SlotPool) -> None:
    free = pool_brute_force_free(pool)
    assert pool._free == free
    assert pool._free_half_total == sum(free)
    buckets = [0] * (HALVES_PER_SLOT + 1)
    for h in free:
        buckets[h] += 1
    assert pool._buckets == buckets
    for halves in range(HALVES_PER_SLOT + 1):
        assert pool.slots_with_headroom(halves) == sum(
            1 for h in free if h >= halves
        )


@given(st.integers(min_value=1, max_value=12), ops)
@settings(max_examples=120, deadline=None)
def test_slot_pool_index_matches_brute_force(num_disks, operations):
    """Indexed and legacy pools see identical operations and must agree
    on every query; the index must match a rescan after every step."""
    indexed = SlotPool(num_disks=num_disks, stride=1, indexed=True)
    legacy = SlotPool(num_disks=num_disks, stride=1, indexed=False)
    for kind, slot, owner, halves in operations:
        slot %= num_disks
        if kind in ("fail", "repair"):
            continue  # DiskArray-only operations
        outcomes = []
        for pool in (indexed, legacy):
            try:
                if kind == "claim":
                    pool.claim(slot, owner, halves=halves)
                    outcomes.append("ok")
                elif kind == "release":
                    outcomes.append(pool.release(slot, owner))
                else:
                    outcomes.append(pool.release_all(owner))
            except SchedulingError:
                outcomes.append("error")
        assert outcomes[0] == outcomes[1]
        assert_pool_index_consistent(indexed)
        for z in range(num_disks):
            assert indexed.free_halves(z) == legacy.free_halves(z)
            assert indexed.claimed_halves(z) == legacy.claimed_halves(z)
        assert indexed.free_half_total == legacy.free_half_total
        assert indexed.has_free_halves == legacy.has_free_halves
        assert indexed.free_count == legacy.free_count
        assert indexed.free_slots() == legacy.free_slots()
        for halves in range(1, HALVES_PER_SLOT + 1):
            assert indexed.slots_with_headroom(halves) == (
                legacy.slots_with_headroom(halves)
            )


@given(st.integers(min_value=1, max_value=10), ops)
@settings(max_examples=120, deadline=None)
def test_disk_array_counts_match_brute_force(num_disks, operations):
    """The array's running claim/failure counts must match a rescan
    after arbitrary claim/release/fail/repair (rebuild) sequences."""
    array = DiskArray(model=TABLE3_DISK, num_disks=num_disks)
    interval = 0
    for kind, disk, owner, slots in operations:
        disk %= num_disks
        try:
            if kind == "claim":
                array.claim(disk, owner, slots=slots)
            elif kind == "release":
                array.release(disk, owner)
            elif kind == "fail":
                array.fail(disk)
            elif kind == "repair":
                array.repair(disk)
            else:  # "release_all" doubles as an interval boundary here
                array.begin_interval()
                interval += 1
        except (SchedulingError, FaultError):
            pass
        claimed = sum(state.claimed_slots for state in array.disks)
        failed = [state.index for state in array.disks if state.failed]
        assert array._claimed_this_interval == claimed
        assert array.failed_count == len(failed)
        assert array.has_failures == bool(failed)
        assert array.failed_disks() == failed
        assert array.free_half_total == (
            (array.num_disks - len(failed)) * SLOTS_PER_DISK - claimed
        )


@given(st.integers(min_value=1, max_value=12), ops)
@settings(max_examples=60, deadline=None)
def test_sanitize_sweep_is_clean_after_any_sequence(num_disks, operations):
    """The sanitizer's occ_index cross-check never fires on states
    reached through the public API, and the clean-skip memo never
    suppresses a sweep of changed state."""
    pool = SlotPool(num_disks=num_disks, stride=1, indexed=True)
    sanitizer = Sanitizer(mode="check")
    for kind, slot, owner, halves in operations:
        slot %= num_disks
        if kind in ("fail", "repair"):
            continue
        try:
            if kind == "claim":
                pool.claim(slot, owner, halves=halves)
            elif kind == "release":
                pool.release(slot, owner)
            else:
                pool.release_all(owner)
        except SchedulingError:
            pass
        pool.verify_invariants(sanitizer, interval=0)
        assert sanitizer.total == 0
        # The memo is pinned to the current version: any mutation bumps
        # the version, so the next sweep after a change always runs.
        assert pool._verified_clean_version == pool.version


def test_clean_skip_memo_does_not_mask_corruption():
    """Direct corruption after a clean sweep is still caught on the
    next sweep once the pool changes (version bump) — and an unclean
    sweep never arms the memo."""
    pool = SlotPool(num_disks=4, stride=1, indexed=True)
    sanitizer = Sanitizer(mode="check")
    pool.claim(0, "a")
    pool.verify_invariants(sanitizer, interval=0)
    assert sanitizer.total == 0
    # Corrupt the index behind the pool's back; the memoed sweep skips
    # (version unchanged — this is exactly the documented trade-off)...
    pool._free_half_total += 1
    pool.verify_invariants(sanitizer, interval=1)
    assert sanitizer.total == 0
    # ...but the very next legitimate mutation re-arms the sweep.
    pool.claim(1, "b")
    pool.verify_invariants(sanitizer, interval=2)
    assert sanitizer.total > 0
    assert pool._verified_clean_version is None
    # And while the state stays dirty, every sweep keeps firing.
    before = sanitizer.total
    pool.claim(2, "c")
    pool.verify_invariants(sanitizer, interval=3)
    assert sanitizer.total > before
