"""Tests for the disk model against the paper's §3.1 numbers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hardware.disk import (
    DiskModel,
    SABRE_DISK,
    TABLE3_DISK,
    disk_for_effective_bandwidth,
)


class TestSabreNumbers:
    """The §3.1 numeric example on the 1.2 GB Sabre drive."""

    def test_cylinder_read_time_is_about_250ms(self):
        assert SABRE_DISK.cylinder_read_time == pytest.approx(0.250, abs=0.001)

    def test_t_switch_is_51_83ms(self):
        assert SABRE_DISK.t_switch == pytest.approx(0.05183)

    def test_service_time_one_cylinder_matches_paper(self):
        # Paper: 301.83 ms (with the cylinder read rounded to 250 ms).
        assert SABRE_DISK.service_time(1) == pytest.approx(0.30183, abs=0.0005)

    def test_service_time_two_cylinders_matches_paper(self):
        # Paper: 555.83 ms (2 cylinders + one track-to-track seek).
        assert SABRE_DISK.service_time(2) == pytest.approx(0.55583, abs=0.0005)

    def test_wasted_bandwidth_one_cylinder_is_17_2_percent(self):
        assert SABRE_DISK.wasted_fraction(1) * 100 == pytest.approx(17.2, abs=0.1)

    def test_wasted_bandwidth_two_cylinders_is_about_10_percent(self):
        assert SABRE_DISK.wasted_fraction(2) * 100 == pytest.approx(10.0, abs=0.2)

    def test_capacity_is_1_2_gigabytes(self):
        # 1635 cylinders x 756000 bytes ~ 1.236 GB = 9888 megabits.
        assert SABRE_DISK.capacity == pytest.approx(1635 * 0.756 * 8, rel=1e-6)


class TestTable3Disk:
    def test_effective_bandwidth_is_exactly_20mbps(self):
        assert TABLE3_DISK.effective_bandwidth(1) == pytest.approx(20.0)

    def test_interval_length_matches_display_arithmetic(self):
        # One fragment per interval at 20 mbps: 12.096 mbit / 20 = 0.6048 s.
        assert TABLE3_DISK.service_time(1) == pytest.approx(0.6048)

    def test_capacity_is_4_5_gigabytes(self):
        assert TABLE3_DISK.capacity == pytest.approx(3000 * 1.512 * 8)

    def test_object_display_time_matches_paper(self):
        # 3000 subobjects x 5 fragments at 100 mbps = 1814.4 s
        # (paper: "1814 seconds (30 minutes and 14 seconds)").
        object_size = 3000 * 5 * TABLE3_DISK.cylinder_capacity
        assert object_size / 100.0 == pytest.approx(1814.4)


class TestSeekCurve:
    def test_zero_distance_costs_nothing(self, sabre):
        assert sabre.seek_time(0) == 0.0

    def test_single_cylinder_is_min_seek(self, sabre):
        assert sabre.seek_time(1) == pytest.approx(sabre.min_seek)

    def test_full_stroke_is_max_seek(self, sabre):
        assert sabre.seek_time(sabre.num_cylinders - 1) == pytest.approx(
            sabre.max_seek
        )

    def test_curve_is_monotone(self, sabre):
        seeks = [sabre.seek_time(d) for d in range(0, sabre.num_cylinders, 100)]
        assert seeks == sorted(seeks)

    def test_negative_distance_rejected(self, sabre):
        with pytest.raises(ConfigurationError):
            sabre.seek_time(-1)

    def test_sample_reposition_bounded(self, sabre, stream):
        for _ in range(200):
            value = sabre.sample_reposition(stream)
            assert 0.0 <= value <= sabre.t_switch + 1e-9


class TestEffectiveBandwidth:
    def test_grows_with_fragment_size(self, sabre):
        bandwidths = [sabre.effective_bandwidth(c) for c in range(1, 6)]
        assert bandwidths == sorted(bandwidths)

    def test_approaches_transfer_rate(self, sabre):
        assert sabre.effective_bandwidth(100) == pytest.approx(
            sabre.transfer_rate, rel=0.02
        )

    def test_diminishing_gains_beyond_two_cylinders(self, sabre):
        gain_1_to_2 = sabre.effective_bandwidth(2) - sabre.effective_bandwidth(1)
        gain_2_to_3 = sabre.effective_bandwidth(3) - sabre.effective_bandwidth(2)
        assert gain_2_to_3 < gain_1_to_2 / 2


class TestValidation:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            DiskModel(
                transfer_rate=0.0,
                num_cylinders=10,
                cylinder_capacity=1.0,
                min_seek=0.001,
                avg_seek=0.002,
                max_seek=0.003,
                avg_latency=0.001,
                max_latency=0.002,
            )

    def test_rejects_unordered_seeks(self):
        with pytest.raises(ConfigurationError):
            DiskModel(
                transfer_rate=10.0,
                num_cylinders=10,
                cylinder_capacity=1.0,
                min_seek=0.005,
                avg_seek=0.002,
                max_seek=0.003,
                avg_latency=0.001,
                max_latency=0.002,
            )

    def test_fragment_size_requires_positive_cylinders(self, sabre):
        with pytest.raises(ConfigurationError):
            sabre.fragment_size(0)


class TestDerivedDisk:
    def test_solves_for_target_effective_bandwidth(self, sabre):
        derived = disk_for_effective_bandwidth(15.0, sabre, fragment_cylinders=2)
        assert derived.effective_bandwidth(2) == pytest.approx(15.0)

    def test_unreachable_target_rejected(self, sabre):
        with pytest.raises(ConfigurationError):
            disk_for_effective_bandwidth(1e9, sabre)
