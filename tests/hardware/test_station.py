"""Tests validating Equation 1 via the station-buffer dynamics."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hardware.station import (
    equation1_buffer,
    hiccup_rate_over_switches,
    sectors_per_fragment,
    simulate_switch,
    worst_case_switch,
)
from repro.sim.rng import RandomStream

#: One 512-byte-ish sector in megabits (4 KB for round numbers).
SECTOR = 0.032768

#: A single drive's share of the display stream: its effective rate.
RATE = 20.0


class TestEquationOneBound:
    def test_eq1_buffer_survives_worst_case(self, sabre):
        buffer = equation1_buffer(RATE, sabre, SECTOR)
        outcome = worst_case_switch(sabre, buffer, RATE, SECTOR)
        assert not outcome.hiccup
        assert outcome.minimum_level >= -1e-9

    def test_eq1_bound_is_tight(self, sabre):
        """One sector less than Eq. 1 and the worst case underruns."""
        buffer = equation1_buffer(RATE, sabre, SECTOR) - SECTOR
        outcome = worst_case_switch(sabre, buffer, RATE, SECTOR)
        assert outcome.hiccup

    def test_minimum_is_at_first_sector(self, sabre):
        buffer = equation1_buffer(RATE, sabre, SECTOR)
        outcome = worst_case_switch(sabre, buffer, RATE, SECTOR)
        t_sector = SECTOR / sabre.transfer_rate
        expected = buffer - RATE * (sabre.t_switch + t_sector)
        assert outcome.minimum_level == pytest.approx(expected, abs=1e-9)

    def test_fast_reposition_keeps_slack(self, sabre):
        buffer = equation1_buffer(RATE, sabre, SECTOR)
        outcome = simulate_switch(
            sabre, buffer, RATE, reposition_time=sabre.min_seek,
            sector_size=SECTOR,
        )
        assert outcome.minimum_level > 0


class TestStochasticSwitches:
    def test_eq1_buffer_never_hiccups(self, sabre):
        buffer = equation1_buffer(RATE, sabre, SECTOR)
        rate = hiccup_rate_over_switches(
            sabre, buffer, RATE, SECTOR, switches=2000,
            stream=RandomStream(5),
        )
        assert rate == 0.0

    def test_half_buffer_hiccups_sometimes(self, sabre):
        buffer = equation1_buffer(RATE, sabre, SECTOR) / 2
        rate = hiccup_rate_over_switches(
            sabre, buffer, RATE, SECTOR, switches=2000,
            stream=RandomStream(5),
        )
        assert rate > 0.0


class TestValidation:
    def test_sectors_per_fragment(self, sabre):
        count = sectors_per_fragment(sabre, SECTOR)
        assert count == pytest.approx(sabre.cylinder_capacity / SECTOR, abs=1)

    def test_bad_inputs(self, sabre):
        with pytest.raises(ConfigurationError):
            sectors_per_fragment(sabre, 0.0)
        with pytest.raises(ConfigurationError):
            simulate_switch(sabre, -1.0, RATE, 0.01, SECTOR)
        with pytest.raises(ConfigurationError):
            simulate_switch(sabre, 1.0, RATE, sabre.t_switch + 1.0, SECTOR)
        with pytest.raises(ConfigurationError):
            hiccup_rate_over_switches(
                sabre, 1.0, RATE, SECTOR, 0, RandomStream(1)
            )
