"""Tests for the tertiary storage device."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.hardware.tertiary import TertiaryDevice, TertiaryRequest


@pytest.fixture
def device():
    return TertiaryDevice(bandwidth=40.0, reposition_time=5.0)


def make_request(object_id=1, size=400.0, service=15.0, at=0.0):
    return TertiaryRequest(
        object_id=object_id, size=size, service_time=service, enqueued_at=at
    )


class TestServiceTimes:
    def test_transfer_time(self, device):
        assert device.transfer_time(400.0) == pytest.approx(10.0)

    def test_fragment_ordered_adds_one_reposition(self, device):
        assert device.service_time_fragment_ordered(400.0) == pytest.approx(15.0)

    def test_sequential_adds_reposition_per_subobject(self, device):
        assert device.service_time_sequential(400.0, 20) == pytest.approx(110.0)

    def test_sequential_validates_subobjects(self, device):
        with pytest.raises(ConfigurationError):
            device.service_time_sequential(400.0, 0)


class TestQueueDiscipline:
    def test_idle_device_starts_immediately(self, device):
        device.enqueue(make_request(), now=0.0)
        assert device.busy
        assert device.next_completion() == pytest.approx(15.0)

    def test_poll_before_completion_returns_none(self, device):
        device.enqueue(make_request(), now=0.0)
        assert device.poll(10.0) is None

    def test_poll_returns_completed_request(self, device):
        request = make_request()
        device.enqueue(request, now=0.0)
        finished = device.poll(15.0)
        assert finished is request
        assert finished.finished_at == pytest.approx(15.0)
        assert device.completed == 1
        assert not device.busy

    def test_fifo_order(self, device):
        first = make_request(object_id=1)
        second = make_request(object_id=2)
        device.enqueue(first, now=0.0)
        device.enqueue(second, now=0.0)
        assert device.queue_length == 1
        assert device.poll(15.0).object_id == 1
        assert device.busy  # second started automatically
        assert device.poll(30.0).object_id == 2

    def test_queueing_delay_recorded(self, device):
        device.enqueue(make_request(object_id=1), now=0.0)
        device.enqueue(make_request(object_id=2), now=0.0)
        device.poll(15.0)
        assert device.queueing_delay.maximum == pytest.approx(15.0)

    def test_is_pending(self, device):
        device.enqueue(make_request(object_id=1), now=0.0)
        device.enqueue(make_request(object_id=2), now=0.0)
        assert device.is_pending(1)
        assert device.is_pending(2)
        assert not device.is_pending(3)

    def test_utilization(self, device):
        device.enqueue(make_request(service=10.0), now=0.0)
        device.poll(10.0)
        assert device.utilization(20.0) == pytest.approx(0.5)

    def test_queueing_delay_requires_started(self):
        request = make_request()
        with pytest.raises(SimulationError):
            _ = request.queueing_delay


class TestValidation:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigurationError):
            TertiaryDevice(bandwidth=0.0)

    def test_rejects_negative_reposition(self):
        with pytest.raises(ConfigurationError):
            TertiaryDevice(bandwidth=10.0, reposition_time=-1.0)
