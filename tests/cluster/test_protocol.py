"""Wire-format tests: specs must cross the network digest-intact."""

from __future__ import annotations

import json

import pytest

from repro.errors import ClusterError
from repro.exec.spec import RunSpec, experiment_spec, spec_digest
from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    check_handshake,
    config_from_wire,
    handshake_document,
    spec_from_wire,
    spec_to_wire,
)
from repro.simulation.config import ScaledConfig


class TestSpecWire:
    def test_experiment_spec_round_trip_preserves_digest(self):
        spec = experiment_spec(
            ScaledConfig(scale=50).with_(
                technique="vdr", num_stations=3, access_mean=0.2
            ),
            label="wire-test",
        )
        wire = json.loads(json.dumps(spec_to_wire(spec)))  # full JSON trip
        rebuilt = spec_from_wire(wire)
        assert rebuilt.label == "wire-test"
        assert rebuilt.config == spec.config
        assert spec_digest(rebuilt) == spec_digest(spec)

    def test_tuple_fields_survive(self):
        config = ScaledConfig(scale=50).with_(
            arrival="mmpp",
            mmpp_rates=(0.1, 0.9),
            mmpp_sojourn=(100.0, 50.0),
            fail_at=((3, 100), (7, 250)),
            mttr=10.0,
        )
        spec = experiment_spec(config)
        rebuilt = spec_from_wire(json.loads(json.dumps(spec_to_wire(spec))))
        assert rebuilt.config.mmpp_rates == (0.1, 0.9)
        assert rebuilt.config.fail_at == ((3, 100), (7, 250))
        assert spec_digest(rebuilt) == spec_digest(spec)

    def test_configless_spec(self):
        spec = RunSpec(kind="mixed_media", params={"value": 3}, label="mm")
        rebuilt = spec_from_wire(json.loads(json.dumps(spec_to_wire(spec))))
        assert rebuilt.config is None
        assert rebuilt.params == {"value": 3}
        assert spec_digest(rebuilt) == spec_digest(spec)

    def test_unknown_config_field_rejected(self):
        wire = spec_to_wire(experiment_spec(ScaledConfig(scale=50)))
        wire["config"]["made_up_knob"] = 1
        with pytest.raises(ClusterError, match="unknown fields"):
            config_from_wire(wire["config"])


class TestHandshake:
    def test_matching_handshake_accepted(self):
        assert check_handshake(handshake_document()) is None

    def test_protocol_mismatch_rejected(self):
        doc = handshake_document()
        doc["protocol"] = PROTOCOL_VERSION + 1
        assert "protocol version mismatch" in check_handshake(doc)

    def test_salt_mismatch_rejected(self):
        doc = handshake_document()
        doc["salt"] = "deadbeef"
        assert "salt" in check_handshake(doc)
