"""Loopback integration tests: master + thread agents, end to end.

The determinism bar from the issue: one local worker, two loopback
agents, and agents dying mid-sweep must all produce byte-identical
cached results and the same order-independent settled-events digest.
Agents here are :class:`ClusterAgent` instances on daemon threads
(``handle_signals=False`` — signal handlers only work on the main
thread), talking real HTTP to a real ``ThreadingHTTPServer`` on a
kernel-assigned loopback port.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ClusterError, ConfigurationError
from repro.exec.cache import ResultCache
from repro.exec.executor import execute
from repro.exec.journal import journal_path, journal_root, load_journal
from repro.exec.spec import RunSpec, register_kind, spec_digest
from repro.exec.supervisor import Supervision
from repro.obs.events import (
    events_path,
    load_events,
    replay_events,
    settled_events_digest,
)
from repro.cluster.agent import ClusterAgent
from repro.cluster.client import execute_via_master
from repro.cluster.master import ClusterMaster
from repro.cluster.protocol import MasterClient, spec_to_wire


@register_kind("cluster_echo")
def _echo_kind(spec, obs=None):
    time.sleep(float(spec.params.get("nap", 0.0)))
    return {"doubled": int(spec.params["value"]) * 2}


@register_kind("cluster_poison")
def _poison_kind(spec, obs=None):
    raise ConfigurationError("deterministically broken spec")


def echo_specs(count: int, nap: float = 0.0):
    return [
        RunSpec(
            kind="cluster_echo",
            params={"value": index, "nap": nap},
            label=f"echo-{index}",
        )
        for index in range(count)
    ]


def fast_options(**overrides) -> Supervision:
    base = dict(
        max_attempts=3,
        backoff_base=0.01,
        backoff_cap=0.05,
        heartbeat_interval=0.05,
        heartbeat_timeout=0.6,
        handle_signals=False,
    )
    base.update(overrides)
    return Supervision(**base)


def start_master(tmp_path, **option_overrides) -> ClusterMaster:
    master = ClusterMaster(
        port=0,
        cache_dir=str(tmp_path / "cluster-cache"),
        options=fast_options(**option_overrides),
    )
    master.start()
    return master


def agent_thread(master, agent_id, **kwargs) -> threading.Thread:
    agent = ClusterAgent(
        master.url,
        agent_id=agent_id,
        options=fast_options(),
        handle_signals=False,
        **kwargs,
    )
    thread = threading.Thread(
        target=agent.run,
        kwargs={"max_idle_s": 3.0},
        name=f"test-agent-{agent_id}",
        daemon=True,
    )
    thread.start()
    return thread


def wait_until(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"condition not reached within {timeout}s")


def master_events(master, sweep_id):
    return load_events(
        events_path(journal_root(master.cache.root), sweep_id)
    )


class TestLoopbackDeterminism:
    def test_two_agents_match_local_single_worker(self, tmp_path):
        specs = echo_specs(5, nap=0.05)
        specs.append(  # duplicate of index 0 — exercises digest dedup
            RunSpec(
                kind="cluster_echo",
                params={"value": 0, "nap": 0.05},
                label="echo-dup",
            )
        )

        local_cache = ResultCache(tmp_path / "local-cache")
        local = execute(
            specs,
            jobs=1,
            cache=local_cache,
            supervision=fast_options(argv=["test-local"]),
        )

        master = start_master(tmp_path)
        try:
            threads = [
                agent_thread(master, "agent-a"),
                agent_thread(master, "agent-b"),
            ]
            remote = execute_via_master(
                specs, fast_options(argv=["test-remote"], master_url=master.url)
            )
            for thread in threads:
                thread.join(timeout=10.0)

            assert [r.index for r in remote] == [r.index for r in local]
            for mine, theirs in zip(remote, local):
                assert mine.digest == theirs.digest
                assert mine.status == theirs.status == "ok"
                assert mine.payload == theirs.payload
            assert remote[-1].cached  # the duplicate settled by dedup

            # Same sweep identity (content-derived) and the same
            # order-independent settled digest on both event streams.
            sweep_id = local[0].sweep_id
            assert remote[0].sweep_id == sweep_id
            local_digest = settled_events_digest(
                load_events(
                    events_path(journal_root(local_cache.root), sweep_id)
                )
            )
            remote_digest = settled_events_digest(
                master_events(master, sweep_id)
            )
            assert local_digest == remote_digest

            # Byte-identical cached results under both roots.
            for record in local:
                assert (
                    master.cache.get(record.digest)["payload"]
                    == local_cache.get(record.digest)["payload"]
                )
        finally:
            master.stop()

    def test_resubmission_is_resume(self, tmp_path):
        specs = echo_specs(3)
        wires = [spec_to_wire(spec) for spec in specs]
        master = start_master(tmp_path)
        try:
            client = MasterClient(master.url)
            first = client.submit_sweep(wires, ["t"], "off")
            assert not first["complete"] and first["pending"] == 3
            again = client.submit_sweep(wires, ["t"], "off")
            assert again["sweep_id"] == first["sweep_id"]

            thread = agent_thread(master, "agent-a")
            wait_until(
                lambda: client.sweep_state(first["sweep_id"])["complete"]
            )
            thread.join(timeout=10.0)
        finally:
            master.stop()

        # A fresh master over the same cache answers the whole sweep
        # from plan-time probes — no agent needed.
        revived = start_master(tmp_path)
        try:
            state = MasterClient(revived.url).submit_sweep(wires, ["t"], "off")
            assert state["complete"]
            rows = MasterClient(revived.url).sweep_records(
                state["sweep_id"]
            )["records"]
            assert [row["status"] for row in rows] == ["ok"] * 3
            assert all(row["cached"] for row in rows)
        finally:
            revived.stop()


class TestFailureAttribution:
    def test_dead_agent_rows_requeue_and_settle(self, tmp_path):
        specs = echo_specs(4)
        master = start_master(tmp_path)
        try:
            client = MasterClient(master.url)
            state = client.submit_sweep(
                [spec_to_wire(s) for s in specs], ["t"], "off"
            )
            sweep_id = state["sweep_id"]

            # A doomed agent leases two rows and falls silent.
            client.register("doomed", cores=1, host="test")
            lease = client.lease("doomed", 2)
            doomed_rows = sorted(row["index"] for row in lease["rows"])
            assert len(doomed_rows) == 2

            thread = agent_thread(master, "healthy")
            wait_until(lambda: client.sweep_state(sweep_id)["complete"])
            thread.join(timeout=10.0)

            rows = client.sweep_records(sweep_id)["records"]
            assert [row["status"] for row in rows] == ["ok"] * 4
            for row in rows:
                # Requeued rows carry the master's attempt chain.
                expected = 2 if row["index"] in doomed_rows else 1
                assert row["attempts"] == expected, row

            events = master_events(master, sweep_id)
            kinds = {record.get("event") for record in events}
            assert {"agent_died", "lease_expired", "run_retried"} <= kinds
            progress = replay_events(events)
            assert progress.agents["doomed"]["state"] == "dead"
            assert progress.agents["healthy"]["state"] == "alive"
            assert progress.agents["healthy"]["settled"] == 4
        finally:
            master.stop()

    def test_exhausted_attempts_settle_structured_failure(self, tmp_path):
        specs = echo_specs(2)
        master = start_master(tmp_path, max_attempts=1)
        try:
            client = MasterClient(master.url)
            state = client.submit_sweep(
                [spec_to_wire(s) for s in specs], ["t"], "off"
            )
            sweep_id = state["sweep_id"]
            client.register("doomed", cores=1, host="test")
            client.lease("doomed", 2)

            # No healthy agent: the budget is one attempt, so expiry
            # settles both rows as synthetic failures — no hang.
            wait_until(lambda: client.sweep_state(sweep_id)["complete"])
            rows = client.sweep_records(sweep_id)["records"]
            assert [row["status"] for row in rows] == ["error"] * 2
            for row in rows:
                assert not row["poisoned"]
                assert "heartbeat silent" in row["error"]
        finally:
            master.stop()

    def test_poison_quarantines_without_retry(self, tmp_path):
        specs = [
            RunSpec(kind="cluster_poison", params={"value": 1}, label="bad"),
            RunSpec(kind="cluster_echo", params={"value": 7}, label="good"),
        ]
        master = start_master(tmp_path)
        try:
            client = MasterClient(master.url)
            state = client.submit_sweep(
                [spec_to_wire(s) for s in specs], ["t"], "off"
            )
            sweep_id = state["sweep_id"]
            thread = agent_thread(master, "agent-a")
            wait_until(lambda: client.sweep_state(sweep_id)["complete"])
            thread.join(timeout=10.0)

            rows = client.sweep_records(sweep_id)["records"]
            by_label = {row["label"]: row for row in rows}
            bad = by_label["bad"]
            assert bad["status"] == "error" and bad["poisoned"]
            assert bad["attempts"] == 1  # deterministic: no retry
            assert by_label["good"]["status"] == "ok"

            journal = load_journal(
                journal_path(journal_root(master.cache.root), sweep_id)
            )
            settled = journal.settled_runs()
            assert settled[bad["digest"]]["poisoned"]
        finally:
            master.stop()


class TestProtocolGuards:
    def test_unknown_sweep_rejected(self, tmp_path):
        master = start_master(tmp_path)
        try:
            with pytest.raises(ClusterError, match="unknown sweep"):
                MasterClient(master.url).sweep_state("nope")
        finally:
            master.stop()

    def test_digest_mismatch_detected_by_agent(self, tmp_path):
        master = start_master(tmp_path)
        try:
            spec = echo_specs(1)[0]
            agent = ClusterAgent(
                master.url, agent_id="a", options=fast_options(),
                handle_signals=False,
            )
            rows = [
                {
                    "index": 0,
                    "digest": "0" * 64,  # not spec_digest(spec)
                    "attempt": 1,
                    "spec": spec_to_wire(spec),
                }
            ]
            assert spec_digest(spec) != "0" * 64
            with pytest.raises(ClusterError, match="digest mismatch"):
                agent._execute_rows(rows, "off")
        finally:
            master.stop()
