"""Registry unit tests: liveness, leases, failure attribution."""

from __future__ import annotations

from repro.cluster.registry import ClusterRegistry


def make_registry(timeout: float = 10.0) -> ClusterRegistry:
    return ClusterRegistry(heartbeat_timeout=timeout)


class TestLiveness:
    def test_register_and_heartbeat(self):
        registry = make_registry()
        info = registry.register("a1", cores=4, host="box", now=100.0)
        assert info.alive and info.cores == 4
        assert registry.heartbeat("a1", 101.0) is True
        assert registry.alive_count() == 1

    def test_unknown_agent_heartbeat_refused(self):
        assert make_registry().heartbeat("ghost", 1.0) is False

    def test_expire_declares_silent_agents_dead(self):
        registry = make_registry(timeout=5.0)
        registry.register("a1", 1, "", now=100.0)
        registry.grant("a1", [("sweep", 0), ("sweep", 1)], 100.0)
        assert registry.expire(104.0) == []  # inside the window
        died = registry.expire(106.0)
        assert len(died) == 1
        info, leases = died[0]
        assert info.agent_id == "a1" and info.state == "dead"
        assert leases == [("sweep", 0), ("sweep", 1)]
        # Dead agents stay dead: no heartbeat, no second expiry.
        assert registry.heartbeat("a1", 107.0) is False
        assert registry.expire(200.0) == []

    def test_dead_agent_can_re_register(self):
        registry = make_registry(timeout=1.0)
        registry.register("a1", 1, "", now=0.0)
        registry.expire(10.0)
        info = registry.register("a1", 1, "", now=11.0)
        assert info.alive
        assert registry.heartbeat("a1", 12.0) is True


class TestLeases:
    def test_grant_release_tracks_settled(self):
        registry = make_registry()
        registry.register("a1", 1, "", now=0.0)
        assert registry.grant("a1", [("s", 3)], 1.0) is True
        assert registry.holds("a1", ("s", 3))
        registry.release("a1", ("s", 3), 2.0)
        assert not registry.holds("a1", ("s", 3))
        assert registry.agents()[0].settled == 1

    def test_grant_to_dead_agent_refused(self):
        registry = make_registry(timeout=1.0)
        registry.register("a1", 1, "", now=0.0)
        registry.expire(10.0)
        assert registry.grant("a1", [("s", 0)], 11.0) is False

    def test_goodbye_returns_leases(self):
        registry = make_registry()
        registry.register("a1", 1, "", now=0.0)
        registry.grant("a1", [("s", 0), ("s", 1)], 1.0)
        assert registry.goodbye("a1") == [("s", 0), ("s", 1)]
        assert registry.agents()[0].state == "left"
        assert registry.goodbye("a1") == []  # idempotent

    def test_re_registration_orphans_leases_as_stale(self):
        registry = make_registry()
        registry.register("a1", 1, "", now=0.0)
        registry.grant("a1", [("s", 0)], 1.0)
        registry.register("a1", 1, "", now=2.0)  # restarted fast
        assert not registry.holds("a1", ("s", 0))
        assert registry.collect_stale() == [("s", 0)]
        assert registry.collect_stale() == []  # drained

    def test_stale_is_per_instance(self):
        first = make_registry()
        first.register("a1", 1, "", now=0.0)
        first.grant("a1", [("s", 0)], 0.0)
        first.register("a1", 1, "", now=1.0)
        assert make_registry().collect_stale() == []
