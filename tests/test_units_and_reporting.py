"""Tests for unit helpers, the error hierarchy, and report formatting."""

from __future__ import annotations

import pytest

from repro import errors, units
from repro.analysis.reporting import format_table


class TestUnits:
    def test_megabytes_to_megabits(self):
        assert units.megabytes(1.512) == pytest.approx(12.096)

    def test_gigabytes(self):
        assert units.gigabytes(1.2) == pytest.approx(9600.0)

    def test_msec_roundtrip(self):
        assert units.msec(35.0) == pytest.approx(0.035)
        assert units.as_msec(units.msec(35.0)) == pytest.approx(35.0)

    def test_as_megabytes_roundtrip(self):
        assert units.as_megabytes(units.megabytes(7.0)) == pytest.approx(7.0)

    def test_per_hour(self):
        assert units.per_hour(1.0) == 3600.0

    def test_identity_helpers(self):
        assert units.mbps(20) == 20.0
        assert units.megabits(5) == 5.0
        assert units.seconds(2) == 2.0


class TestErrors:
    def test_hierarchy(self):
        for exc in (
            errors.ConfigurationError,
            errors.SimulationError,
            errors.SchedulingError,
            errors.AdmissionError,
            errors.CapacityError,
            errors.LayoutError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_single_catch_covers_library_errors(self):
        with pytest.raises(errors.ReproError):
            raise errors.SchedulingError("hiccup")


class TestFormatTable:
    def test_aligned_columns(self):
        text = format_table(
            [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}], columns=["a", "b"]
        )
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:2])

    def test_floats_rounded(self):
        text = format_table([{"v": 3.14159}])
        assert "3.14" in text and "3.14159" not in text

    def test_missing_keys_blank(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "1" in text and "2" in text

    def test_empty(self):
        assert format_table([]) == "(no rows)"
