"""Tests for the interval clock."""

from __future__ import annotations

import pytest

from repro.core.intervals import IntervalClock
from repro.errors import ConfigurationError


def test_for_disk_uses_service_time(table3):
    clock = IntervalClock.for_disk(table3, fragment_cylinders=1)
    assert clock.interval_length == pytest.approx(0.6048)


def test_for_effective_bandwidth_identity(table3):
    clock = IntervalClock.for_effective_bandwidth(
        fragment_size=table3.cylinder_capacity, effective_bandwidth=20.0
    )
    assert clock.interval_length == pytest.approx(0.6048)


def test_time_interval_roundtrip():
    clock = IntervalClock(0.5)
    assert clock.time_of(4) == pytest.approx(2.0)
    assert clock.interval_of(2.0) == 4
    assert clock.interval_of(2.49) == 4
    assert clock.interval_of(2.5) == 5


def test_intervals_for_duration_rounds_up():
    clock = IntervalClock(0.5)
    assert clock.intervals_for(1.0) == 2
    assert clock.intervals_for(1.01) == 3
    assert clock.intervals_for(0.0) == 0


def test_display_intervals_is_subobject_count():
    clock = IntervalClock(0.6048)
    assert clock.display_intervals(3000) == 3000


def test_paper_display_duration():
    """3000 intervals of 0.6048s = 1814.4 s (paper: 30 min 14 s)."""
    clock = IntervalClock(0.6048)
    assert clock.time_of(clock.display_intervals(3000)) == pytest.approx(1814.4)


def test_validation():
    with pytest.raises(ConfigurationError):
        IntervalClock(0.0)
    clock = IntervalClock(1.0)
    with pytest.raises(ConfigurationError):
        clock.interval_of(-1.0)
    with pytest.raises(ConfigurationError):
        clock.intervals_for(-1.0)
    with pytest.raises(ConfigurationError):
        clock.display_intervals(0)
