"""The admission fast paths must be invisible: with the occupancy
index on (denial-replay cache, bucket fast-rejects, inlined probes)
and off (the original scan paths), identical operation sequences must
produce identical claims, plans, and pool states."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import AdmissionMode, Admitter
from repro.core.display import Display
from repro.core.virtual_disks import SlotPool
from tests.conftest import make_object

scenarios = st.fixed_dictionaries(
    {
        "num_disks": st.integers(min_value=4, max_value=16),
        "stride": st.integers(min_value=1, max_value=4),
        "mode": st.sampled_from(list(AdmissionMode)),
        "degrees": st.lists(
            st.integers(min_value=1, max_value=4), min_size=1, max_size=6
        ),
        # (display index, interval delta, abort?) events
        "events": st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=3),
                st.booleans(),
            ),
            min_size=1,
            max_size=30,
        ),
    }
)


def _build(params, indexed):
    pool = SlotPool(
        num_disks=params["num_disks"],
        stride=params["stride"],
        indexed=indexed,
    )
    admitter = Admitter(pool, mode=params["mode"])
    displays = [
        Display(
            display_id=i,
            obj=make_object(i, degree=min(d, params["num_disks"])),
            start_disk=(3 * i) % params["num_disks"],
            requested_at=0,
        )
        for i, d in enumerate(params["degrees"])
    ]
    return pool, admitter, displays


def _lane_state(display):
    return [(lane.slot, lane.ready) for lane in display.lanes]


@given(scenarios)
@settings(max_examples=150, deadline=None)
def test_indexed_and_legacy_admission_are_identical(params):
    indexed_pool, indexed_admitter, indexed_displays = _build(params, True)
    legacy_pool, legacy_admitter, legacy_displays = _build(params, False)
    interval = 0
    for which, delta, abort in params["events"]:
        interval += delta
        i = which % len(indexed_displays)
        if abort:
            released = indexed_admitter.abort(indexed_displays[i])
            assert released == legacy_admitter.abort(legacy_displays[i])
            # An aborted display is replaced by a fresh request in the
            # real scheduler; model that with a new display object.
            replacement = lambda pool: Display(
                display_id=100 + interval * 10 + i,
                obj=indexed_displays[i].obj,
                start_disk=indexed_displays[i].start_disk,
                requested_at=interval,
            )
            indexed_displays[i] = replacement(indexed_pool)
            legacy_displays[i] = replacement(legacy_pool)
            continue
        plan_indexed = indexed_admitter.try_claim(indexed_displays[i], interval)
        plan_legacy = legacy_admitter.try_claim(legacy_displays[i], interval)
        assert plan_indexed.claimed_now == plan_legacy.claimed_now
        assert plan_indexed.complete == plan_legacy.complete
        assert _lane_state(indexed_displays[i]) == _lane_state(
            legacy_displays[i]
        )
        # Full pool equivalence after every step.
        for z in range(params["num_disks"]):
            assert indexed_pool.owners_of(z) == legacy_pool.owners_of(z)
    assert indexed_admitter._n_lanes == legacy_admitter._n_lanes
    assert indexed_admitter._n_complete == legacy_admitter._n_complete


@given(scenarios)
@settings(max_examples=60, deadline=None)
def test_denial_replay_never_outlives_a_pool_change(params):
    """Whenever a probe is denied via the replay cache, a brute-force
    re-probe on a legacy twin pool (same state) must also deny — i.e.
    the cache can never replay a stale verdict after the pool moved."""
    pool, admitter, displays = _build(params, True)
    if params["mode"] is not AdmissionMode.CONTIGUOUS:
        return
    twin = SlotPool(
        num_disks=params["num_disks"], stride=params["stride"], indexed=False
    )
    twin_admitter = Admitter(twin, mode=params["mode"])
    twin_displays = [
        Display(
            display_id=d.display_id,
            obj=d.obj,
            start_disk=d.start_disk,
            requested_at=d.requested_at,
        )
        for d in displays
    ]
    interval = 0
    for which, delta, abort in params["events"]:
        interval += delta
        i = which % len(displays)
        if abort:
            admitter.abort(displays[i])
            twin_admitter.abort(twin_displays[i])
            continue
        plan = admitter.try_claim(displays[i], interval)
        twin_plan = twin_admitter.try_claim(twin_displays[i], interval)
        assert plan.complete == twin_plan.complete
        assert plan.claimed_now == twin_plan.claimed_now
