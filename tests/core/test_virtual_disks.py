"""Tests for virtual disks and the slot pool."""

from __future__ import annotations

import pytest

from repro.core.virtual_disks import (
    SlotPool,
    first_arrival,
    physical_disk_of_slot,
    slot_at_physical,
)
from repro.errors import ConfigurationError, SchedulingError


class TestGeometry:
    def test_physical_shifts_right_by_stride(self):
        assert physical_disk_of_slot(0, 0, 1, 8) == 0
        assert physical_disk_of_slot(0, 1, 1, 8) == 1
        assert physical_disk_of_slot(0, 3, 2, 8) == 6
        assert physical_disk_of_slot(6, 2, 1, 8) == 0  # the Fig. 6 slot

    def test_slot_at_is_inverse_of_physical(self):
        for d in range(12):
            for t in range(25):
                slot = slot_at_physical(d, t, 3, 12)
                assert physical_disk_of_slot(slot, t, 3, 12) == d

    def test_virtual_disk_reads_consecutive_subobjects(self):
        """§3.2.1: the virtual disk reading the first fragment of a
        subobject at interval t reads the first fragment of the next
        subobject at t+1 (fragments are k apart)."""
        stride, d = 3, 12
        start = 4
        for i in range(10):
            fragment_disk = (start + i * stride) % d
            slot = slot_at_physical(fragment_disk, i, stride, d)
            assert slot == slot_at_physical(start, 0, stride, d)


class TestFirstArrival:
    def test_stride_one_simple_difference(self):
        assert first_arrival(6, 0, 1, 8, 0) == 2  # Fig. 6: slot 6 -> drive 0
        assert first_arrival(1, 1, 1, 8, 0) == 0

    def test_not_before_pushes_to_next_cycle(self):
        assert first_arrival(1, 1, 1, 8, 1) == 8

    def test_unreachable_with_composite_gcd(self):
        # k=5, D=1000: slot 0 only visits multiples of 5.
        assert first_arrival(0, 3, 5, 1000, 0) is None
        assert first_arrival(0, 10, 5, 1000, 0) == 2

    def test_coprime_stride_reaches_everything(self):
        for target in range(9):
            arrival = first_arrival(0, target, 2, 9, 0)
            assert arrival is not None
            assert (0 + 2 * arrival) % 9 == target


class TestSlotPoolOwnership:
    @pytest.fixture
    def pool(self):
        return SlotPool(num_disks=8, stride=1)

    def test_claim_and_release(self, pool):
        pool.claim(3, "d1")
        assert pool.owners_of(3) == {"d1": 2}
        assert not pool.is_free(3)
        assert pool.release(3, "d1") == 2
        assert pool.is_free(3)

    def test_double_claim_rejected(self, pool):
        pool.claim(3, "d1")
        with pytest.raises(SchedulingError):
            pool.claim(3, "d2")

    def test_half_claims_coexist(self, pool):
        pool.claim(3, "a", halves=1)
        pool.claim(3, "b", halves=1)
        assert pool.free_halves(3) == 0
        with pytest.raises(SchedulingError):
            pool.claim(3, "c", halves=1)

    def test_is_free_with_halves(self, pool):
        pool.claim(3, "a", halves=1)
        assert pool.is_free(3, halves=1)
        assert not pool.is_free(3, halves=2)

    def test_release_wrong_owner_rejected(self, pool):
        pool.claim(3, "a")
        with pytest.raises(SchedulingError):
            pool.release(3, "b")

    def test_release_all(self, pool):
        pool.claim(1, "a")
        pool.claim(5, "a", halves=1)
        pool.claim(5, "b", halves=1)
        assert pool.release_all("a") == 2
        assert pool.is_free(1)
        assert pool.free_halves(5) == 1

    def test_counts(self, pool):
        assert pool.free_count == 8
        pool.claim(0, "a")
        pool.claim(1, "b", halves=1)
        assert pool.busy_count == 2
        assert pool.free_count == 6
        assert pool.slots_of("a") == [0]

    def test_invalid_halves(self, pool):
        with pytest.raises(SchedulingError):
            pool.claim(0, "a", halves=0)
        with pytest.raises(SchedulingError):
            pool.claim(0, "a", halves=3)


class TestFreeRuns:
    def test_empty_pool_is_one_run(self):
        pool = SlotPool(num_disks=8, stride=1)
        assert pool.free_runs() == [(0, 8)]
        assert pool.longest_free_run() == 8

    def test_full_pool_has_no_runs(self):
        pool = SlotPool(num_disks=4, stride=1)
        for z in range(4):
            pool.claim(z, f"d{z}")
        assert pool.free_runs() == []
        assert pool.longest_free_run() == 0

    def test_circular_run_detected(self):
        pool = SlotPool(num_disks=8, stride=1)
        pool.claim(3, "a")
        pool.claim(4, "b")
        runs = dict(pool.free_runs())
        # Free: 5,6,7,0,1,2 as one circular run of 6.
        assert runs == {5: 6}

    def test_figure6_pattern(self):
        """Fig. 6: free slots at 1 and 6, two intervening busy pairs."""
        pool = SlotPool(num_disks=8, stride=1)
        for z in (0, 7, 2, 3, 4, 5):
            pool.claim(z, f"other{z}")
        runs = sorted(pool.free_runs())
        assert runs == [(1, 1), (6, 1)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlotPool(num_disks=0, stride=1)
        with pytest.raises(ConfigurationError):
            SlotPool(num_disks=8, stride=0)
