"""Tests for the Object Manager: residency, pins, LFU/LRU replacement."""

from __future__ import annotations

import pytest

from repro.core.object_manager import ObjectManager, ReplacementPolicy
from repro.errors import CapacityError, ConfigurationError
from repro.media.catalog import Catalog
from tests.conftest import make_object


@pytest.fixture
def catalog():
    # Five objects of 72 mbit each (2 subobjects x 3 fragments x 12).
    return Catalog([make_object(i, num_subobjects=2, degree=3,
                                fragment_size=12.0) for i in range(5)])


@pytest.fixture
def manager(catalog):
    # Room for exactly three objects.
    return ObjectManager(catalog, capacity=3 * 72.0)


class TestResidency:
    def test_add_and_remove(self, manager):
        manager.add_resident(0)
        assert manager.is_resident(0)
        assert manager.used == pytest.approx(72.0)
        manager.remove_resident(0)
        assert not manager.is_resident(0)
        assert manager.used == 0.0
        assert manager.evictions == 1

    def test_add_is_idempotent(self, manager):
        manager.add_resident(0)
        manager.add_resident(0)
        assert manager.used == pytest.approx(72.0)

    def test_overflow_rejected(self, manager):
        for object_id in range(3):
            manager.add_resident(object_id)
        with pytest.raises(CapacityError):
            manager.add_resident(3)

    def test_reservation_converts_without_double_charge(self, manager):
        manager.reserve(0)
        assert manager.used == pytest.approx(72.0)
        manager.add_resident(0)
        assert manager.used == pytest.approx(72.0)
        assert manager.is_resident(0)

    def test_cancel_reservation(self, manager):
        manager.reserve(0)
        manager.cancel_reservation(0)
        assert manager.used == 0.0


class TestAccessAccounting:
    def test_hit_and_miss_counters(self, manager):
        manager.add_resident(0)
        assert manager.record_access(0, interval=1)
        assert not manager.record_access(1, interval=2)
        assert manager.hits == 1
        assert manager.misses == 1
        assert manager.hit_rate() == pytest.approx(0.5)

    def test_frequency_accumulates(self, manager):
        for _ in range(3):
            manager.record_access(2, interval=0)
        assert manager.frequency(2) == 3


class TestPins:
    def test_pinned_object_not_evictable(self, manager):
        manager.add_resident(0)
        manager.add_resident(1)
        manager.pin(0)
        assert manager.choose_victim() == 1
        manager.pin(1)
        assert manager.choose_victim() is None

    def test_unpin_restores_evictability(self, manager):
        manager.add_resident(0)
        manager.pin(0)
        manager.unpin(0)
        assert manager.choose_victim() == 0

    def test_unbalanced_unpin_raises(self, manager):
        with pytest.raises(CapacityError):
            manager.unpin(0)

    def test_evicting_pinned_raises(self, manager):
        manager.add_resident(0)
        manager.pin(0)
        with pytest.raises(CapacityError):
            manager.remove_resident(0)


class TestLFUReplacement:
    def test_least_frequent_evicted_first(self, manager):
        for object_id in range(3):
            manager.add_resident(object_id)
        manager.record_access(0, 1)
        manager.record_access(0, 2)
        manager.record_access(1, 3)
        # Object 2: frequency 0 -> victim.
        assert manager.choose_victim() == 2

    def test_tie_broken_by_recency(self, manager):
        manager.add_resident(0)
        manager.add_resident(1)
        manager.record_access(0, 5)
        manager.record_access(1, 9)
        assert manager.choose_victim() == 0  # same freq, older access

    def test_make_room_evicts_until_fit(self, manager, catalog):
        for object_id in range(3):
            manager.add_resident(object_id)
        manager.record_access(2, 1)
        fits, evicted = manager.make_room(2 * 72.0)
        assert fits
        assert len(evicted) == 2
        assert 2 not in evicted  # the accessed object survived

    def test_make_room_reports_failure_with_partial_evictions(self, manager):
        for object_id in range(3):
            manager.add_resident(object_id)
        manager.pin(1)
        manager.pin(2)
        fits, evicted = manager.make_room(3 * 72.0)
        assert not fits
        assert evicted == [0]

    def test_impossible_size_raises(self, manager):
        with pytest.raises(CapacityError):
            manager.make_room(10_000.0)


class TestLRUReplacement:
    def test_least_recent_evicted(self, catalog):
        manager = ObjectManager(
            catalog, capacity=3 * 72.0, policy=ReplacementPolicy.LRU
        )
        for object_id in range(3):
            manager.add_resident(object_id)
        manager.record_access(0, 10)
        manager.record_access(1, 20)
        manager.record_access(2, 5)
        manager.record_access(2, 6)  # more frequent but older than 0, 1
        assert manager.choose_victim() == 2


def test_capacity_validation(catalog):
    with pytest.raises(ConfigurationError):
        ObjectManager(catalog, capacity=0.0)
