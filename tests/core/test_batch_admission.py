"""Property tests for the batched admission kernel.

:class:`repro.core.batch.BatchAdmissionIndex` is pure acceleration:
its per-pass verdicts must agree with the scalar
:class:`~repro.core.admission.Admitter` probe for **every** display
after *any* sequence of adds, scalar claims, pool churn, removals and
compactions — a False verdict must mean "the scalar probe would claim
nothing", a True verdict must mean "the scalar probe claims at least
one lane" (FRAGMENTED) or "the whole window claim succeeds"
(CONTIGUOUS).  Hypothesis drives random operation sequences against
the index, the scalar admitter, and the pool's numpy free-half mirror
and checks all three after every step, mirroring
``tests/hardware/test_occupancy_index.py`` for the occupancy indexes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import fastpath
from repro.core import batch as batch_module
from repro.core.admission import AdmissionMode, Admitter
from repro.core.batch import BatchAdmissionIndex
from repro.core.display import Display
from repro.core.virtual_disks import HALVES_PER_SLOT, SlotPool
from repro.errors import ConfigurationError, SchedulingError
from repro.media.objects import MediaObject, MediaType
from repro.sim.sanitize import Sanitizer

pytestmark = pytest.mark.skipif(
    not fastpath.numpy_available(), reason="batched kernel needs numpy"
)

_TYPE = MediaType(name="test-video", display_bandwidth=100.0)


def _display(display_id: int, degree: int, start_disk: int,
             degree_halves=None) -> Display:
    obj = MediaObject(
        object_id=display_id,
        media_type=_TYPE,
        num_subobjects=10,
        degree=degree,
        fragment_size=180.0,
    )
    lanes = None
    if degree_halves is not None:
        # __post_init__ derives the lane count from degree_halves.
        from repro.core.display import Lane

        lanes = [Lane(fragment=j) for j in range((degree_halves + 1) // 2)]
    return Display(
        display_id=display_id,
        obj=obj,
        start_disk=start_disk,
        requested_at=0,
        lanes=lanes or [],
        degree_halves=degree_halves,
    )


def _scalar_verdict(index: BatchAdmissionIndex, display: Display,
                    interval: int) -> bool:
    """Brute-force oracle for one display's pass verdict."""
    pool = index.pool
    d = pool.num_disks
    offset = pool.stride * interval % d
    halves = display.lane_halves()
    pending = [lane.slot is None for lane in display.lanes]
    if not any(pending):
        return True  # forced True: the scalar probe completes instantly
    fits = [
        pool.free_halves((display.start_disk + lane.fragment - offset) % d)
        >= h
        for lane, h in zip(display.lanes, halves)
    ]
    if index.mode is AdmissionMode.FRAGMENTED:
        return any(f and p for f, p in zip(fits, pending))
    full = display.full_lane_count()
    buckets = pool._buckets
    return (
        all(fits)
        and full <= buckets[HALVES_PER_SLOT]
        and len(halves) <= d - buckets[0]
    )


def _assert_verdicts_match_oracle(index: BatchAdmissionIndex,
                                  interval: int) -> None:
    verdicts = index.pass_verdicts(interval)
    for display_id, (position, _row, _n) in index._segments.items():
        display = index._displays[display_id]
        assert bool(verdicts[position]) == _scalar_verdict(
            index, display, interval
        ), f"display {display_id} at interval {interval}"


# One operation: (kind, selector a, selector b, halves-ish small int).
ops = st.lists(
    st.tuples(
        st.sampled_from(
            ["add", "add_half", "claim", "background", "release_bg",
             "remove", "tick"]
        ),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=HALVES_PER_SLOT),
    ),
    max_size=50,
)


@pytest.mark.parametrize(
    "mode", [AdmissionMode.FRAGMENTED, AdmissionMode.CONTIGUOUS]
)
@given(num_disks=st.integers(min_value=2, max_value=12), operations=ops)
@settings(max_examples=60, deadline=None)
def test_batched_verdicts_match_scalar_probe(mode, num_disks, operations):
    """After any claim/release/churn sequence the batched verdicts
    agree with the scalar oracle, the numpy mirror matches the scalar
    free array, and the sanitizer sweep stays clean."""
    pool = SlotPool(num_disks=num_disks, stride=1, indexed=True, batched=True)
    admitter = Admitter(pool, mode=mode)
    index = BatchAdmissionIndex(pool, mode)
    sanitizer = Sanitizer(mode="check")
    displays = {}
    interval = 0
    next_id = 0
    for kind, a, b, halves in operations:
        if kind in ("add", "add_half"):
            next_id += 1
            degree = 1 + a % min(num_disks, 4)
            degree_halves = None
            if kind == "add_half":
                degree_halves = 1 + b % (2 * degree)
            display = _display(
                next_id, degree, b % num_disks, degree_halves=degree_halves
            )
            displays[next_id] = display
            index.add_display(display)
        elif kind == "claim" and displays:
            keys = sorted(displays)
            display = displays[keys[a % len(keys)]]
            verdict = bool(
                index.pass_verdicts(interval)[index.position(display.display_id)]
            )
            plan = admitter.try_claim(display, interval)
            index.on_claim(display)
            # Soundness: a False verdict promised the scalar probe
            # would do nothing.  Exactness: a True verdict promised at
            # least one claim (FRAGMENTED) / the whole window
            # (CONTIGUOUS).
            if not verdict:
                assert plan.claimed_now == []
                assert not plan.complete
            elif display.fully_laned and not plan.claimed_now:
                assert plan.complete
            elif mode is AdmissionMode.FRAGMENTED:
                assert plan.claimed_now
            else:
                assert plan.complete and plan.claimed_now
            if plan.complete:
                admitter.abort(display)
                index.remove_display(display.display_id)
                del displays[display.display_id]
        elif kind == "background":
            try:
                pool.claim(a % num_disks, ("bg", b % 7), halves=halves)
            except SchedulingError:
                pass
        elif kind == "release_bg":
            pool.release_all(("bg", b % 7))
        elif kind == "remove" and displays:
            keys = sorted(displays)
            display = displays.pop(keys[a % len(keys)])
            admitter.abort(display)
            index.remove_display(display.display_id)
        elif kind == "tick":
            interval += 1
        # The numpy mirror must track the scalar free array exactly.
        assert pool._free_np.tolist() == pool._free
        assert len(index) == len(displays)
        _assert_verdicts_match_oracle(index, interval)
        index.verify_invariants(sanitizer, interval)
        assert sanitizer.total == 0


@given(num_disks=st.integers(min_value=2, max_value=8),
       operations=ops)
@settings(max_examples=40, deadline=None)
def test_compaction_preserves_verdicts_and_renumbers(num_disks, operations):
    """With the compaction threshold forced low, heavy add/remove churn
    compacts repeatedly; every compaction must bump the generation,
    keep creation order, and leave verdicts equal to the oracle."""
    original = batch_module._COMPACT_MIN_ROWS
    batch_module._COMPACT_MIN_ROWS = 4
    try:
        _run_compaction_sequence(num_disks, operations)
    finally:
        batch_module._COMPACT_MIN_ROWS = original


def _run_compaction_sequence(num_disks, operations):
    pool = SlotPool(num_disks=num_disks, stride=1, indexed=True, batched=True)
    index = BatchAdmissionIndex(pool, AdmissionMode.FRAGMENTED)
    displays = {}
    next_id = 0
    positions = {}
    for kind, a, b, _halves in operations:
        generation_before = index.generation
        if kind in ("add", "add_half", "claim", "tick"):
            next_id += 1
            display = _display(next_id, 1 + a % num_disks, b % num_disks)
            displays[next_id] = display
            positions[next_id] = index.add_display(display)
        elif displays:  # remove / background / release_bg all remove here
            keys = sorted(displays)
            victim = keys[a % len(keys)]
            del displays[victim]
            positions.pop(victim)
            index.remove_display(victim)
        if index.generation == generation_before:
            # No compaction: cached positions must still resolve.
            for display_id, position in positions.items():
                assert index.position(display_id) == position
        else:
            # Compaction renumbered: re-resolve, creation order intact.
            assert index.generation > generation_before
            positions = {
                display_id: index.position(display_id)
                for display_id in displays
            }
            ordered = sorted(positions, key=positions.__getitem__)
            assert ordered == sorted(displays)
        assert len(index) == len(displays)
        _assert_verdicts_match_oracle(index, 0)
    sanitizer = Sanitizer(mode="check")
    index.verify_invariants(sanitizer, 0)
    assert sanitizer.total == 0


class TestConstruction:
    def test_requires_batched_pool(self):
        pool = SlotPool(num_disks=4, stride=1, indexed=True, batched=False)
        with pytest.raises(ConfigurationError, match="batched SlotPool"):
            BatchAdmissionIndex(pool, AdmissionMode.FRAGMENTED)

    def test_empty_table_yields_empty_verdicts(self):
        pool = SlotPool(num_disks=4, stride=1, indexed=True, batched=True)
        index = BatchAdmissionIndex(pool, AdmissionMode.FRAGMENTED)
        assert len(index.pass_verdicts(0)) == 0
        assert len(index) == 0
        assert index.position(99) is None

    def test_capacity_growth_preserves_rows(self):
        pool = SlotPool(num_disks=8, stride=1, indexed=True, batched=True)
        index = BatchAdmissionIndex(pool, AdmissionMode.FRAGMENTED)
        displays = [_display(i + 1, 4, i % 8) for i in range(200)]
        for display in displays:
            index.add_display(display)
        assert index._rows == 800  # past the initial 256 capacity
        sanitizer = Sanitizer(mode="check")
        index.verify_invariants(sanitizer, 0)
        assert sanitizer.total == 0
        _assert_verdicts_match_oracle(index, 0)


class TestSanitizerCatchesDrift:
    def _index(self):
        pool = SlotPool(num_disks=8, stride=1, indexed=True, batched=True)
        index = BatchAdmissionIndex(pool, AdmissionMode.FRAGMENTED)
        index.add_display(_display(1, 4, 0))
        return index

    def test_stale_pending_row_fires(self):
        index = self._index()
        index._pending[2] = False  # display 1 lane 2 is actually pending
        sanitizer = Sanitizer(mode="check")
        index.verify_invariants(sanitizer, interval=5)
        assert sanitizer.total > 0

    def test_corrupt_geometry_fires(self):
        index = self._index()
        index._bases[0] += 1
        sanitizer = Sanitizer(mode="check")
        index.verify_invariants(sanitizer, interval=5)
        assert sanitizer.total > 0

    def test_live_row_count_drift_fires(self):
        index = self._index()
        index._live_rows += 1
        sanitizer = Sanitizer(mode="check")
        index.verify_invariants(sanitizer, interval=5)
        assert sanitizer.total > 0
