"""Tests for display/lane state."""

from __future__ import annotations

import pytest

from repro.core.display import Display, Lane
from repro.errors import SchedulingError
from tests.conftest import make_object


def make_display(ready=(0, 0, 0), requested_at=0):
    obj = make_object(num_subobjects=6, degree=len(ready))
    display = Display(
        display_id=1, obj=obj, start_disk=0, requested_at=requested_at
    )
    for lane, r in zip(display.lanes, ready):
        lane.slot = 10 + lane.fragment
        lane.ready = r
    return display


class TestLane:
    def test_read_and_release_intervals(self):
        lane = Lane(fragment=1, slot=5, ready=3)
        assert lane.read_interval(0) == 3
        assert lane.read_interval(4) == 7
        assert lane.release_interval(6) == 9

    def test_unclaimed_lane_raises(self):
        lane = Lane(fragment=0)
        assert not lane.claimed
        with pytest.raises(SchedulingError):
            lane.read_interval(0)


class TestAlignedDisplay:
    def test_deliver_start_and_finish(self):
        display = make_display(ready=(2, 2, 2), requested_at=1)
        assert display.deliver_start == 2
        assert display.finish_interval == 7
        assert display.startup_latency_intervals == 1

    def test_no_buffering_when_aligned(self):
        display = make_display(ready=(2, 2, 2))
        assert display.buffer_demand() == 0.0
        assert set(display.steady_state_buffers().values()) == {0}

    def test_delivery_schedule(self):
        display = make_display(ready=(0, 0, 0))
        assert display.delivers_at(0) == 0
        assert display.delivers_at(5) == 5
        assert display.delivers_at(6) is None


class TestFragmentedDisplay:
    def test_deliver_start_is_slowest_lane(self):
        display = make_display(ready=(2, 0, 1))
        assert display.deliver_start == 2

    def test_write_offsets_match_algorithm1(self):
        display = make_display(ready=(2, 0, 1))
        assert display.lane_write_offset(0) == 0
        assert display.lane_write_offset(1) == 2
        assert display.lane_write_offset(2) == 1

    def test_buffer_demand_sums_offsets(self):
        display = make_display(ready=(2, 0, 1))
        assert display.buffer_demand() == pytest.approx(3 * 12.096)

    def test_reads_at_respects_per_lane_schedule(self):
        display = make_display(ready=(2, 0, 1))
        assert {l.fragment for l in display.reads_at(0)} == {1}
        assert {l.fragment for l in display.reads_at(1)} == {1, 2}
        assert {l.fragment for l in display.reads_at(2)} == {0, 1, 2}
        assert {l.fragment for l in display.reads_at(5)} == {0, 1, 2}
        # Lane 1 started at 0, reads 6 subobjects, done after interval 5.
        assert {l.fragment for l in display.reads_at(6)} == {0, 2}


class TestPartialDisplay:
    def test_pending_lanes(self):
        obj = make_object(degree=3)
        display = Display(display_id=1, obj=obj, start_disk=0, requested_at=0)
        display.lanes[0].slot = 3
        display.lanes[0].ready = 0
        assert not display.fully_laned
        assert [l.fragment for l in display.pending_lanes] == [1, 2]
        with pytest.raises(SchedulingError):
            _ = display.deliver_start

    def test_delivers_nothing_until_fully_laned(self):
        obj = make_object(degree=2)
        display = Display(display_id=1, obj=obj, start_disk=0, requested_at=0)
        assert display.delivers_at(0) is None


class TestHalfSlotDisplays:
    def test_full_bandwidth_lane_halves(self):
        display = make_display()
        assert display.lane_halves() == [2, 2, 2]

    def test_odd_half_degree(self):
        obj = make_object(bandwidth=30.0, degree=2)
        display = Display(
            display_id=1, obj=obj, start_disk=0, requested_at=0,
            degree_halves=3,
        )
        assert display.lane_halves() == [2, 1]

    def test_half_degree_lane_count_validated(self):
        obj = make_object(bandwidth=30.0, degree=2)
        with pytest.raises(SchedulingError):
            Display(
                display_id=1,
                obj=obj,
                start_disk=0,
                requested_at=0,
                lanes=[Lane(fragment=0)],
                degree_halves=5,
            )
