"""Tests for admission control over the slot pool."""

from __future__ import annotations

import pytest

from repro.core.admission import (
    AdmissionMode,
    Admitter,
    worst_case_contiguous_wait,
)
from repro.core.display import Display
from repro.core.virtual_disks import SlotPool
from tests.conftest import make_object


def make_display(display_id=1, start_disk=0, degree=3, n=6, requested_at=0):
    obj = make_object(num_subobjects=n, degree=degree)
    return Display(
        display_id=display_id,
        obj=obj,
        start_disk=start_disk,
        requested_at=requested_at,
    )


class TestContiguous:
    def test_empty_pool_admits_immediately(self):
        pool = SlotPool(num_disks=9, stride=3)
        admitter = Admitter(pool, AdmissionMode.CONTIGUOUS)
        display = make_display(start_disk=3)
        plan = admitter.try_claim(display, interval=0)
        assert plan.complete
        assert display.deliver_start == 0
        # Lanes sit over drives 3,4,5 at interval 0.
        for lane in display.lanes:
            assert pool.physical_of(lane.slot, 0) == 3 + lane.fragment

    def test_all_or_nothing(self):
        pool = SlotPool(num_disks=9, stride=3)
        pool.claim(pool.slot_at(4, 0), "other")  # middle drive busy
        admitter = Admitter(pool, AdmissionMode.CONTIGUOUS)
        display = make_display(start_disk=3)
        plan = admitter.try_claim(display, interval=0)
        assert not plan.complete
        assert plan.claimed_now == []
        assert display.pending_lanes == display.lanes

    def test_waits_for_rotation(self):
        """With k=M the aligned window returns every R intervals."""
        pool = SlotPool(num_disks=9, stride=3)
        # Cluster over drives 0..2 at interval 0 is busy.
        for z in (0, 1, 2):
            pool.claim(z, "other")
        admitter = Admitter(pool, AdmissionMode.CONTIGUOUS)
        display = make_display(start_disk=0)
        assert not admitter.try_claim(display, 0).complete
        # Next interval the slots over drives 0..2 are 6,7,8 (free).
        assert admitter.try_claim(display, 1).complete
        assert display.deliver_start == 1

    def test_second_claim_after_complete_is_noop(self):
        pool = SlotPool(num_disks=9, stride=3)
        admitter = Admitter(pool, AdmissionMode.CONTIGUOUS)
        display = make_display()
        assert admitter.try_claim(display, 0).complete
        plan = admitter.try_claim(display, 1)
        assert plan.complete and plan.claimed_now == []


class TestFragmented:
    def test_incremental_claims_follow_figure6(self):
        """Fig. 6: M=2 display, drives 0/1 busy except slot 1; slot 6
        reaches drive 0 at interval 2."""
        pool = SlotPool(num_disks=8, stride=1)
        for z in (0, 7, 2, 3, 4, 5):
            pool.claim(z, f"other{z}")
        admitter = Admitter(pool, AdmissionMode.FRAGMENTED)
        display = make_display(start_disk=0, degree=2, n=6)
        plan0 = admitter.try_claim(display, 0)
        assert not plan0.complete
        assert display.lanes[1].slot == 1  # fragment X0.1 via slot 1
        assert display.lanes[1].ready == 0
        assert not admitter.try_claim(display, 1).complete
        plan2 = admitter.try_claim(display, 2)
        assert plan2.complete
        assert display.lanes[0].slot == 6
        assert display.lanes[0].ready == 2
        assert display.deliver_start == 2
        assert display.lane_write_offset(1) == 2  # buffered two intervals

    def test_aligned_when_everything_free(self):
        pool = SlotPool(num_disks=8, stride=1)
        admitter = Admitter(pool, AdmissionMode.FRAGMENTED)
        display = make_display(start_disk=2, degree=3)
        assert admitter.try_claim(display, 0).complete
        assert display.buffer_demand() == 0.0

    def test_release_lane_and_abort(self):
        pool = SlotPool(num_disks=8, stride=1)
        admitter = Admitter(pool, AdmissionMode.FRAGMENTED)
        display = make_display(degree=3)
        admitter.try_claim(display, 0)
        admitter.release_lane(display, 1)
        assert pool.is_free(display.lanes[1].slot)
        assert admitter.abort(display) == 2

    def test_two_displays_share_the_pool(self):
        pool = SlotPool(num_disks=6, stride=1)
        admitter = Admitter(pool, AdmissionMode.FRAGMENTED)
        a = make_display(display_id=1, start_disk=0, degree=3)
        b = make_display(display_id=2, start_disk=3, degree=3)
        assert admitter.try_claim(a, 0).complete
        assert admitter.try_claim(b, 0).complete
        assert pool.free_count == 0
        owned = {tuple(sorted(pool.slots_of(1))), tuple(sorted(pool.slots_of(2)))}
        assert owned == {(0, 1, 2), (3, 4, 5)}


class TestWorstCaseWait:
    def test_simple_striping_matches_r_minus_1(self):
        # D=90, M=3 -> R=30 clusters -> 29 intervals worst case.
        assert worst_case_contiguous_wait(90, 3) == 29

    def test_stride_one_is_d_minus_1(self):
        assert worst_case_contiguous_wait(8, 1) == 7
