"""Tests for the shared ``REPRO_*`` switch parser and the numpy
gating layer: one vocabulary, one error shape (one line, exit 2 via
the CLI), call-time reads, and the scalar fallback when numpy is
masked."""

from __future__ import annotations

import pytest

from repro import fastpath, switches
from repro.cli import main
from repro.core import virtual_disks
from repro.core.virtual_disks import SlotPool
from repro.errors import ConfigurationError


class TestParseSwitch:
    @pytest.mark.parametrize("value", ["1", "on", "true", "yes", "ON", " On "])
    def test_on_values(self, value):
        assert switches.parse_switch("X", value) is True

    @pytest.mark.parametrize("value", ["0", "off", "false", "no", "OFF"])
    def test_off_values(self, value):
        assert switches.parse_switch("X", value) is False

    @pytest.mark.parametrize("value", [None, "", "   "])
    def test_unset_and_empty_yield_default(self, value):
        assert switches.parse_switch("X", value, default=True) is True
        assert switches.parse_switch("X", value, default=False) is False

    @pytest.mark.parametrize("value", ["bogus", "2", "enabled", "y"])
    def test_invalid_values_raise_one_line(self, value):
        with pytest.raises(ConfigurationError) as excinfo:
            switches.parse_switch("REPRO_BATCH_KERNEL", value)
        message = str(excinfo.value)
        assert "\n" not in message
        assert "REPRO_BATCH_KERNEL" in message
        assert value in message


class TestEnvSwitch:
    def test_reads_environment_at_call_time(self, monkeypatch):
        monkeypatch.delenv(switches.BATCH_KERNEL_ENV, raising=False)
        assert switches.env_switch(switches.BATCH_KERNEL_ENV) is True
        monkeypatch.setenv(switches.BATCH_KERNEL_ENV, "off")
        assert switches.env_switch(switches.BATCH_KERNEL_ENV) is False
        monkeypatch.setenv(switches.BATCH_KERNEL_ENV, "on")
        assert switches.env_switch(switches.BATCH_KERNEL_ENV) is True

    def test_occ_index_uses_shared_parser(self, monkeypatch):
        monkeypatch.setenv(switches.OCC_INDEX_ENV, "nonsense")
        with pytest.raises(ConfigurationError, match="REPRO_OCC_INDEX"):
            virtual_disks.occupancy_index_enabled()

    def test_batch_kernel_uses_shared_parser(self, monkeypatch):
        monkeypatch.setenv(switches.BATCH_KERNEL_ENV, "nonsense")
        with pytest.raises(ConfigurationError, match="REPRO_BATCH_KERNEL"):
            fastpath.batch_kernel_enabled()


@pytest.mark.skipif(
    fastpath._numpy is None, reason="needs an installed numpy to mask"
)
class TestNumpyMasking:
    def test_no_numpy_masks_an_installed_numpy(self, monkeypatch):
        monkeypatch.delenv(switches.NO_NUMPY_ENV, raising=False)
        assert fastpath.numpy_available() is True
        monkeypatch.setenv(switches.NO_NUMPY_ENV, "1")
        assert fastpath.numpy_or_none() is None
        assert fastpath.numpy_available() is False
        assert fastpath.batch_kernel_enabled() is False

    def test_masked_pool_falls_back_to_scalar(self, monkeypatch):
        monkeypatch.setenv(switches.NO_NUMPY_ENV, "1")
        pool = SlotPool(num_disks=4, stride=1)
        assert pool.batched is False
        assert pool.free_halves_array() is None
        pool.claim(0, "a")
        assert pool.free_halves(0) == 0

    def test_batch_kernel_off_disables_with_numpy_present(self, monkeypatch):
        monkeypatch.delenv(switches.NO_NUMPY_ENV, raising=False)
        monkeypatch.setenv(switches.BATCH_KERNEL_ENV, "off")
        assert fastpath.batch_kernel_enabled() is False
        pool = SlotPool(num_disks=4, stride=1)
        assert pool.batched is False


class TestCliExitTwo:
    """An invalid switch value is a user error: one line on stderr,
    exit code 2 — the same contract as a malformed ``--failpoints``."""

    @pytest.mark.parametrize(
        "env", [switches.BATCH_KERNEL_ENV, switches.OCC_INDEX_ENV]
    )
    def test_invalid_switch_is_one_line_exit_two(self, env, monkeypatch,
                                                 capsys):
        monkeypatch.setenv(env, "bogus")
        code = main([
            "run", "--scale", "100", "--technique", "simple",
            "--stations", "2", "--mean", "0.2",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert env in err

    def test_valid_switch_runs(self, monkeypatch, capsys):
        monkeypatch.setenv(switches.BATCH_KERNEL_ENV, "off")
        code = main([
            "run", "--scale", "100", "--technique", "simple",
            "--stations", "2", "--mean", "0.2",
        ])
        assert code == 0
        assert "throughput_per_hour" in capsys.readouterr().out
