"""Tests for the Tertiary Manager."""

from __future__ import annotations

import pytest

from repro.core.tertiary_manager import TertiaryManager
from repro.core.virtual_disks import SlotPool
from repro.hardware.tertiary import TertiaryDevice
from repro.media.tape_layout import TapeLayout, TapeOrder
from tests.conftest import make_object


@pytest.fixture
def pool():
    return SlotPool(num_disks=10, stride=1)


@pytest.fixture
def manager():
    device = TertiaryDevice(bandwidth=40.0, reposition_time=0.6048)
    return TertiaryManager(
        device=device,
        tape_layout=TapeLayout(TapeOrder.FRAGMENT_ORDERED),
        interval_length=0.6048,
        disk_bandwidth=20.0,
    )


def drive_until_done(manager, pool, start_disks, limit=20000):
    """Advance until a completion; returns (interval, finished_ids)."""
    for interval in range(limit):
        finished = manager.advance(interval, pool, start_disks.get)
        if finished:
            return interval, finished
    raise AssertionError("no completion within limit")


class TestQueueing:
    def test_write_degree_derived(self, manager):
        assert manager.write_degree == 2

    def test_request_dedupes(self, manager):
        obj = make_object(0, num_subobjects=4, degree=2)
        assert manager.request(obj, 0)
        assert not manager.request(obj, 0)
        assert manager.queue_length == 1

    def test_materialisation_completes_and_frees_slots(self, manager, pool):
        obj = make_object(0, num_subobjects=4, degree=2)
        manager.request(obj, 0)
        interval, finished = drive_until_done(manager, pool, {0: 0})
        assert finished == [0]
        assert manager.completed == 1
        assert pool.free_count == 10
        assert not manager.is_pending(0)
        # Disk-side: ceil(2/2) pass x 4 subobjects = 4 intervals.
        assert interval == pytest.approx(4, abs=1)

    def test_fifo_across_objects(self, manager, pool):
        a = make_object(0, num_subobjects=3, degree=2)
        b = make_object(1, num_subobjects=3, degree=2)
        manager.request(a, 0)
        manager.request(b, 0)
        starts = {0: 0, 1: 5}
        _, first = drive_until_done(manager, pool, starts)
        assert first == [0]
        _, second = drive_until_done(manager, pool, starts)
        assert second == [1]

    def test_busy_flag_and_utilization(self, manager, pool):
        obj = make_object(0, num_subobjects=4, degree=2)
        manager.request(obj, 0)
        manager.advance(0, pool, {0: 0}.get)
        assert manager.busy
        drive_until_done(manager, pool, {0: 0})
        assert not manager.busy
        assert 0.0 < manager.utilization(10) <= 1.0

    def test_queueing_delay_recorded(self, manager, pool):
        a = make_object(0, num_subobjects=3, degree=2)
        b = make_object(1, num_subobjects=3, degree=2)
        manager.request(a, 0)
        manager.request(b, 0)
        starts = {0: 0, 1: 5}
        drive_until_done(manager, pool, starts)
        drive_until_done(manager, pool, starts)
        assert manager.queueing_delay_intervals.maximum > 0
