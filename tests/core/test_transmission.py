"""Tests for per-node network demand of the delivery schedule."""

from __future__ import annotations

import pytest

from repro.core.admission import AdmissionMode, Admitter
from repro.core.display import Display
from repro.core.transmission import (
    double_duty_nodes,
    interval_demand,
    record_interval,
)
from repro.core.virtual_disks import SlotPool
from repro.hardware.network import NetworkModel
from tests.conftest import make_object


def aligned_display(pool, start_disk=0, degree=3, n=6, bandwidth=60.0):
    obj = make_object(bandwidth=bandwidth, num_subobjects=n, degree=degree)
    display = Display(display_id=1, obj=obj, start_disk=start_disk,
                      requested_at=0)
    admitter = Admitter(pool, AdmissionMode.FRAGMENTED)
    assert admitter.try_claim(display, 0).complete
    return display


def figure6_display(pool):
    """M=2, slots 1 and 6 over an 8-drive, stride-1 frame."""
    obj = make_object(bandwidth=40.0, num_subobjects=6, degree=2)
    display = Display(display_id=1, obj=obj, start_disk=0, requested_at=0)
    display.lanes[0].slot, display.lanes[0].ready = 6, 2
    display.lanes[1].slot, display.lanes[1].ready = 1, 0
    for lane in display.lanes:
        pool.claim(lane.slot, display.display_id)
    return display


class TestAlignedDemand:
    def test_each_node_carries_one_lane_share(self):
        pool = SlotPool(num_disks=8, stride=1)
        display = aligned_display(pool)
        demand = interval_demand([display], pool, interval=2)
        # Delivering subobject 2: three nodes, 20 mbps each.
        assert len(demand) == 3
        assert all(rate == pytest.approx(20.0) for rate in demand.values())

    def test_nodes_follow_the_rotation(self):
        pool = SlotPool(num_disks=8, stride=1)
        display = aligned_display(pool, start_disk=0)
        nodes_t0 = set(interval_demand([display], pool, 0))
        nodes_t3 = set(interval_demand([display], pool, 3))
        assert nodes_t0 == {0, 1, 2}
        assert nodes_t3 == {3, 4, 5}

    def test_no_demand_outside_delivery_window(self):
        pool = SlotPool(num_disks=8, stride=1)
        display = aligned_display(pool, n=4)
        assert interval_demand([display], pool, interval=10) == {}

    def test_no_double_duty_when_aligned(self):
        pool = SlotPool(num_disks=8, stride=1)
        display = aligned_display(pool)
        assert double_duty_nodes([display], pool, 2) == {}


class TestFragmentedDemand:
    def test_buffered_lane_transmits_from_reading_node(self):
        """Figure 6: lane .1's buffered fragment leaves the node whose
        drive is two positions behind its current read."""
        pool = SlotPool(num_disks=8, stride=1)
        display = figure6_display(pool)
        # First delivery at interval 2 (deliver_start).
        demand = interval_demand([display], pool, 2)
        # Lane 0 pipelines from its current node; lane 1 transmits the
        # fragment it read at interval 0 from node 1.
        node_lane0 = pool.physical_of(6, 2)
        node_lane1 = pool.physical_of(1, 0)
        assert demand == {
            node_lane0: pytest.approx(20.0),
            node_lane1: pytest.approx(20.0),
        }

    def test_double_duty_detected(self):
        """A node reading one display's fragment while transmitting
        another's buffered fragment is doing the §3.2.1 double duty."""
        pool = SlotPool(num_disks=8, stride=1)
        display = figure6_display(pool)
        # At interval 2 the fig-6 display delivers subobject 0; lane 1
        # transmits its buffered X0.1 from node physical(1, 0) = 1.
        # Build a second display whose *read* at interval 2 lands on
        # that very node: slot 7 sits over drive 1 at t = 2.
        obj = make_object(2, bandwidth=20.0, num_subobjects=6, degree=1)
        other = Display(display_id=2, obj=obj, start_disk=1, requested_at=0)
        other.lanes[0].slot, other.lanes[0].ready = 7, 2
        pool.claim(7, other.display_id)
        duty = double_duty_nodes([display, other], pool, 2)
        assert duty == {1: 1}

    def test_record_interval_feeds_network_model(self):
        pool = SlotPool(num_disks=8, stride=1)
        display = figure6_display(pool)
        network = NetworkModel(num_nodes=8, node_capacity=25.0)
        for interval in range(8):
            record_interval(network, [display], pool, interval)
        network.begin_interval()
        assert network.peak_node_demand == pytest.approx(20.0)
        assert network.overcommitted_intervals == 0

    def test_shared_node_sums_demand(self):
        """Two displays delivering through one node add their shares."""
        pool = SlotPool(num_disks=8, stride=1)
        a = aligned_display(pool, start_disk=0, degree=2, bandwidth=40.0)
        obj = make_object(2, bandwidth=20.0, num_subobjects=6, degree=1)
        b = Display(display_id=2, obj=obj, start_disk=0, requested_at=0)
        # Claim b's lane one interval later: its slot then trails a's.
        admitter = Admitter(pool, AdmissionMode.FRAGMENTED)
        assert admitter.try_claim(b, 1).complete
        # At interval 1, a delivers subobject 1 via nodes {1, 2}; b
        # delivers subobject 0 via node 0... their nodes differ; total
        # demand is conserved either way:
        demand = interval_demand([a, b], pool, 1)
        assert sum(demand.values()) == pytest.approx(40.0 + 20.0)