"""Tests for Algorithm 2 (dynamic coalescing) against Figure 6."""

from __future__ import annotations

import pytest

from repro.core.coalesce import CoalescingLane, plan_coalesce, run_coalescing_lane
from repro.errors import SchedulingError
from tests.conftest import make_object


class TestPlan:
    def test_figure6_plan(self):
        """Lane .1: ready 0, deliver_start 2, coalesce granted at t=5
        to offset 0 -> backlog X3.1/X4.1, new disk reads X5 at t=7."""
        obj = make_object(num_subobjects=12, degree=2)
        plan = plan_coalesce(
            obj, deliver_start=2, old_ready=0, new_offset=0, at_interval=5
        )
        assert plan.backlog == 2
        assert plan.old_last_read_subobject == 4
        assert plan.new_first_read_subobject == 5
        assert plan.new_ready == 7
        assert plan.quiet_intervals == 2

    def test_partial_coalesce(self):
        """Coalescing to a smaller-but-nonzero offset drains only the
        difference."""
        obj = make_object(num_subobjects=20, degree=2)
        plan = plan_coalesce(
            obj, deliver_start=3, old_ready=0, new_offset=1, at_interval=6
        )
        assert plan.backlog == 2
        assert plan.new_ready == 3 + 6 - 1  # deliver_start + s - offset

    def test_growing_offset_rejected(self):
        obj = make_object()
        with pytest.raises(SchedulingError):
            plan_coalesce(obj, deliver_start=2, old_ready=0, new_offset=3,
                          at_interval=5)


class TestFigure6Lane:
    def test_full_timeline(self):
        obj = make_object(num_subobjects=8, degree=2)
        trace = run_coalescing_lane(
            obj, lane=1, deliver_start=2, ready=0, coalesce_at=5, new_offset=0
        )
        reads = [(e.interval, e.subobject) for e in trace.reads()]
        outputs = [(e.interval, e.subobject) for e in trace.outputs()]
        # Reads 0..4 at t=0..4, quiet at 5-6, resume s5 at t=7.
        assert reads == [
            (0, 0), (1, 1), (2, 2), (3, 3), (4, 4),
            (7, 5), (8, 6), (9, 7),
        ]
        # Delivery continuous from t=2: one subobject per interval.
        assert outputs == [(2 + s, s) for s in range(8)]

    def test_buffer_drains_to_zero_after_coalesce(self):
        obj = make_object(num_subobjects=8, degree=2)
        lane = CoalescingLane(obj, lane=1, deliver_start=2, ready=0)
        for t in range(12):
            if t == 5:
                lane.request_coalesce(0, t)
            lane.step(t)
        assert lane.done
        assert lane.buffered() == 0
        assert lane.coalesces_completed == 1
        assert lane.w_offset == 0

    def test_no_coalesce_baseline(self):
        obj = make_object(num_subobjects=5, degree=2)
        trace = run_coalescing_lane(obj, lane=1, deliver_start=2, ready=0)
        assert [(e.interval, e.subobject) for e in trace.outputs()] == [
            (2 + s, s) for s in range(5)
        ]

    def test_double_coalesce_rejected_while_in_transition(self):
        obj = make_object(num_subobjects=10, degree=2)
        lane = CoalescingLane(obj, lane=1, deliver_start=2, ready=0)
        for t in range(5):
            lane.step(t)
        lane.request_coalesce(0, 5)
        with pytest.raises(SchedulingError):
            lane.request_coalesce(0, 5)

    def test_second_coalesce_after_completion_allowed(self):
        obj = make_object(num_subobjects=20, degree=2)
        lane = CoalescingLane(obj, lane=1, deliver_start=4, ready=0)
        granted = []
        for t in range(26):
            if t == 6:
                granted.append(lane.request_coalesce(2, t))
            if t == 14 and not lane.in_transition:
                granted.append(lane.request_coalesce(0, t))
            lane.step(t)
            if lane.done:
                break
        assert lane.done
        assert lane.coalesces_completed == 2
        assert len(granted) == 2

    def test_hiccup_free_invariant(self):
        """Every interval in [deliver_start, finish] delivers exactly
        one subobject, coalesce or not."""
        obj = make_object(num_subobjects=10, degree=2)
        trace = run_coalescing_lane(
            obj, lane=0, deliver_start=3, ready=1, coalesce_at=6, new_offset=0
        )
        intervals = [e.interval for e in trace.outputs()]
        assert intervals == list(range(3, 13))
