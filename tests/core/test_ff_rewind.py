"""Tests for rewind / fast-forward support (§3.2.5)."""

from __future__ import annotations

import pytest

from repro.core.ff_rewind import (
    DEFAULT_SCAN_RATE,
    build_ff_replica,
    normal_position,
    plan_reposition,
    replica_position,
)
from repro.errors import ConfigurationError
from tests.conftest import make_object


class TestReplica:
    def test_replica_is_one_sixteenth(self):
        obj = make_object(num_subobjects=3200, degree=5)
        replica = build_ff_replica(obj, replica_id=9000)
        assert replica.num_subobjects == 200
        assert replica.size == pytest.approx(obj.size / DEFAULT_SCAN_RATE)

    def test_replica_keeps_bandwidth_and_degree(self):
        obj = make_object(bandwidth=100.0, degree=5)
        replica = build_ff_replica(obj, replica_id=1)
        assert replica.display_bandwidth == 100.0
        assert replica.degree == 5

    def test_replica_covers_object_16x_faster(self):
        obj = make_object(num_subobjects=3200, degree=5)
        replica = build_ff_replica(obj, replica_id=1)
        assert obj.display_time / replica.display_time == pytest.approx(16.0)

    def test_custom_scan_rate(self):
        obj = make_object(num_subobjects=100)
        replica = build_ff_replica(obj, replica_id=1, scan_rate=4)
        assert replica.num_subobjects == 25

    def test_scan_rate_validation(self):
        with pytest.raises(ConfigurationError):
            build_ff_replica(make_object(), replica_id=1, scan_rate=1)


class TestPositionMapping:
    def test_roundtrip_is_close(self):
        obj = make_object(num_subobjects=160)
        replica = build_ff_replica(obj, replica_id=1)
        for position in (0, 37, 80, 159):
            r = replica_position(obj, replica, position)
            back = normal_position(obj, replica, r)
            assert abs(back - position) < DEFAULT_SCAN_RATE

    def test_bounds_checked(self):
        obj = make_object(num_subobjects=16)
        replica = build_ff_replica(obj, replica_id=1)
        with pytest.raises(ConfigurationError):
            replica_position(obj, replica, 16)
        with pytest.raises(ConfigurationError):
            normal_position(obj, replica, replica.num_subobjects)


class TestReposition:
    def test_fast_forward_rotation_wait(self):
        obj = make_object(num_subobjects=20, degree=2)
        plan = plan_reposition(
            obj, start_disk=0, num_disks=10, stride=1,
            current_subobject=2, target_subobject=7,
        )
        assert plan.target_subobject == 7
        assert plan.target_start_disk == 7
        assert plan.rotation_wait == 5

    def test_rewind_wraps_the_rotation(self):
        obj = make_object(num_subobjects=20, degree=2)
        plan = plan_reposition(
            obj, start_disk=0, num_disks=10, stride=1,
            current_subobject=7, target_subobject=2,
        )
        # Rewinding 5 subobjects waits for the frame to come around.
        assert plan.rotation_wait == 5  # (2 - 7) mod 10

    def test_stride_m_period_is_r(self):
        obj = make_object(num_subobjects=30, degree=3)
        plan = plan_reposition(
            obj, start_disk=0, num_disks=9, stride=3,
            current_subobject=0, target_subobject=10,
        )
        # Period D/gcd = 3 clusters; 10 mod 3 = 1 interval.
        assert plan.rotation_wait == 1

    def test_bounds(self):
        obj = make_object(num_subobjects=5)
        with pytest.raises(ConfigurationError):
            plan_reposition(obj, 0, 10, 1, 0, 5)
        with pytest.raises(ConfigurationError):
            plan_reposition(obj, 0, 10, 1, 5, 0)
