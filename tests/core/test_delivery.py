"""Tests for Algorithm 1 (time-fragmented delivery) on the DES kernel."""

from __future__ import annotations

import pytest

from repro.core.delivery import run_fragmented_delivery
from repro.core.virtual_disks import SlotPool
from repro.errors import SchedulingError
from tests.conftest import make_object


def figure6_pool():
    """Fig. 6's rotating frame: D=8, k=1, slots 1 and 6 free."""
    return SlotPool(num_disks=8, stride=1)


class TestFigure6Timeline:
    """The worked example of §3.2.1 (before coalescing)."""

    @pytest.fixture
    def outcome(self):
        obj = make_object(num_subobjects=6, degree=2)
        pool = figure6_pool()
        trace, offsets = run_fragmented_delivery(
            obj, start_disk=0, lane_slots=[6, 1], pool=pool
        )
        return trace, offsets

    def test_offsets(self, outcome):
        _trace, offsets = outcome
        assert offsets == [0, 2]  # lane 1 buffers 2 intervals

    def test_lane1_reads_immediately(self, outcome):
        trace, _ = outcome
        reads = [(e.interval, e.subobject) for e in trace.reads() if e.lane == 1]
        assert reads[:3] == [(0, 0), (1, 1), (2, 2)]

    def test_lane0_reads_from_interval_2(self, outcome):
        trace, _ = outcome
        reads = [(e.interval, e.subobject) for e in trace.reads() if e.lane == 0]
        assert reads[:3] == [(2, 0), (3, 1), (4, 2)]

    def test_delivery_starts_at_interval_2_and_is_synchronized(self, outcome):
        trace, _ = outcome
        by_interval = trace.outputs_by_interval()
        assert min(by_interval) == 2
        # Both fragments of subobject 0 delivered together at t=2.
        assert sorted((e.lane, e.subobject) for e in by_interval[2]) == [
            (0, 0),
            (1, 0),
        ]

    def test_all_subobjects_delivered_in_order(self, outcome):
        trace, _ = outcome
        assert trace.delivered_subobjects() == list(range(6))

    def test_lane1_steady_state_buffer_is_two_fragments(self, outcome):
        trace, _ = outcome
        assert trace.buffered_count(1, 1) == 2
        assert trace.buffered_count(1, 3) == 2  # steady state
        assert trace.buffered_count(0, 3) == 0  # pipelined lane


class TestAlignedDelivery:
    def test_no_offsets_no_buffering(self):
        obj = make_object(num_subobjects=4, degree=3)
        pool = SlotPool(num_disks=8, stride=1)
        trace, offsets = run_fragmented_delivery(
            obj, start_disk=2, lane_slots=[2, 3, 4], pool=pool
        )
        assert offsets == [0, 0, 0]
        assert trace.delivered_subobjects() == [0, 1, 2, 3]
        for lane in range(3):
            assert trace.buffered_count(lane, 2) == 0

    def test_reads_equal_outputs_per_lane(self):
        obj = make_object(num_subobjects=5, degree=2)
        pool = SlotPool(num_disks=6, stride=1)
        trace, _ = run_fragmented_delivery(
            obj, start_disk=0, lane_slots=[4, 1], pool=pool
        )
        assert len(trace.reads()) == len(trace.outputs()) == 10


class TestValidation:
    def test_wrong_lane_count_rejected(self):
        obj = make_object(degree=3)
        pool = SlotPool(num_disks=8, stride=1)
        with pytest.raises(SchedulingError):
            run_fragmented_delivery(obj, 0, [1, 2], pool)

    def test_unreachable_slot_rejected(self):
        obj = make_object(degree=2)
        pool = SlotPool(num_disks=10, stride=5)
        # Slot 1 never reaches drive 0 (gcd 5 does not divide -1).
        with pytest.raises(SchedulingError):
            run_fragmented_delivery(obj, 0, [1, 6], pool)


class TestTraceValidators:
    def test_hiccup_detected(self):
        from repro.core.delivery import DeliveryTrace

        trace = DeliveryTrace()
        trace.record(0, "output", 0, 0)
        trace.record(1, "output", 1, 0)  # lanes disagree on interval
        with pytest.raises(SchedulingError):
            trace.delivered_subobjects()

    def test_partial_delivery_detected(self):
        from repro.core.delivery import DeliveryTrace

        trace = DeliveryTrace()
        trace.record(0, "output", 0, 0)
        trace.record(0, "output", 1, 0)
        trace.record(1, "output", 0, 1)  # lane 1 missing for subobject 1
        with pytest.raises(SchedulingError):
            trace.delivered_subobjects()
