"""Tests for the scheduler's low-bandwidth (half-slot) mode (§3.2.3)."""

from __future__ import annotations

import pytest

from repro.core.admission import AdmissionMode
from repro.core.disk_manager import DiskManager
from repro.core.object_manager import ObjectManager
from repro.core.scheduler import StaggeredStripingPolicy
from repro.errors import ConfigurationError
from repro.hardware.disk import TABLE3_DISK
from repro.hardware.disk_array import DiskArray
from repro.media.catalog import Catalog
from repro.simulation.policy import Request
from tests.conftest import make_object


def build_policy(objects, num_disks=4, stride=1):
    catalog = Catalog(objects)
    array = DiskArray(model=TABLE3_DISK, num_disks=num_disks)
    disk_manager = DiskManager(array=array, stride=stride)
    object_manager = ObjectManager(catalog, capacity=catalog.total_size)
    return StaggeredStripingPolicy(
        catalog=catalog,
        disk_manager=disk_manager,
        object_manager=object_manager,
        tertiary_manager=None,
        admission_mode=AdmissionMode.FRAGMENTED,
        half_slot_objects=True,
        disk_bandwidth=20.0,
    )


def submit(policy, request_id, object_id, interval=0):
    policy.submit(
        Request(request_id=request_id, station_id=request_id,
                object_id=object_id, issued_at=interval),
        interval=interval,
    )


def run_until(policy, count, horizon=200):
    completions = []
    for interval in range(horizon):
        completions.extend(policy.advance(interval))
        if len(completions) >= count:
            break
    return completions


class TestHalfSlotSharing:
    def test_two_half_bandwidth_displays_share_one_drive(self):
        """Figure 7's scenario: X and Y at B_disk/2 each run on the
        same drive in the same intervals."""
        x = make_object(0, bandwidth=10.0, num_subobjects=6, degree=1)
        y = make_object(1, bandwidth=10.0, num_subobjects=6, degree=1)
        policy = build_policy([x, y], num_disks=2)
        # Both on drive 0.
        policy.disk_manager.place_object(x, start_disk=0)
        policy.disk_manager.place_object(y, start_disk=0)
        policy.object_manager.add_resident(0)
        policy.object_manager.add_resident(1)
        submit(policy, 1, 0)
        submit(policy, 2, 1)
        policy.advance(0)
        displays = list(policy._active.values())
        assert len(displays) == 2
        # Same virtual disk, one half each.
        slots = {d.lanes[0].slot for d in displays}
        assert len(slots) == 1
        owners = policy.disk_manager.pool.owners_of(slots.pop())
        assert sorted(owners.values()) == [1, 1]
        completions = run_until(policy, 2)
        assert {c.finished_at for c in completions} == {5}

    def test_three_halves_object_uses_one_and_a_half_drives(self):
        """B = 3/2 B_disk fits in 3 half-slots (the paper's exact-fit
        example)."""
        obj = make_object(0, bandwidth=30.0, num_subobjects=4, degree=2)
        policy = build_policy([obj], num_disks=4)
        policy.preload([0])
        submit(policy, 1, 0)
        policy.advance(0)
        display = next(iter(policy._active.values()))
        assert display.degree_halves == 3
        assert display.lane_halves() == [2, 1]
        # The second drive has a spare half for another low-bw display.
        spare_slot = display.lanes[1].slot
        assert policy.disk_manager.pool.free_halves(spare_slot) == 1
        completions = run_until(policy, 1)
        assert completions[0].finished_at == 3

    def test_exact_fit_pairing_on_shared_drive(self):
        """A 30 mbps display's half-drive pairs with a 10 mbps one."""
        big = make_object(0, bandwidth=30.0, num_subobjects=6, degree=2)
        small = make_object(1, bandwidth=10.0, num_subobjects=6, degree=1)
        policy = build_policy([big, small], num_disks=4)
        policy.disk_manager.place_object(big, start_disk=0)
        policy.disk_manager.place_object(small, start_disk=1)
        policy.object_manager.add_resident(0)
        policy.object_manager.add_resident(1)
        submit(policy, 1, 0)
        submit(policy, 2, 1)
        policy.advance(0)
        displays = {d.obj.object_id: d for d in policy._active.values()}
        assert displays[0].lanes[1].slot == displays[1].lanes[0].slot
        completions = run_until(policy, 2)
        assert len(completions) == 2

    def test_full_bandwidth_objects_unaffected(self):
        obj = make_object(0, bandwidth=100.0, num_subobjects=4, degree=5)
        policy = build_policy([obj], num_disks=6)
        policy.preload([0])
        submit(policy, 1, 0)
        policy.advance(0)
        display = next(iter(policy._active.values()))
        assert display.degree_halves is None
        assert display.lane_halves() == [2] * 5

    def test_half_slots_all_released(self):
        x = make_object(0, bandwidth=10.0, num_subobjects=4, degree=1)
        y = make_object(1, bandwidth=10.0, num_subobjects=4, degree=1)
        policy = build_policy([x, y], num_disks=2)
        policy.disk_manager.place_object(x, start_disk=0)
        policy.disk_manager.place_object(y, start_disk=0)
        policy.object_manager.add_resident(0)
        policy.object_manager.add_resident(1)
        submit(policy, 1, 0)
        submit(policy, 2, 1)
        run_until(policy, 2)
        for _ in range(3):
            policy.advance(100)
        pool = policy.disk_manager.pool
        assert all(pool.free_halves(z) == 2 for z in range(2))


def test_half_slot_mode_requires_disk_bandwidth():
    obj = make_object(0)
    catalog = Catalog([obj])
    array = DiskArray(model=TABLE3_DISK, num_disks=4)
    with pytest.raises(ConfigurationError):
        StaggeredStripingPolicy(
            catalog=catalog,
            disk_manager=DiskManager(array=array, stride=1),
            object_manager=ObjectManager(catalog, capacity=obj.size),
            half_slot_objects=True,
        )
