"""Tests for the staggered-striping Centralized Scheduler."""

from __future__ import annotations

import pytest

from repro.core.admission import AdmissionMode
from repro.core.disk_manager import DiskManager
from repro.core.object_manager import ObjectManager
from repro.core.scheduler import StaggeredStripingPolicy
from repro.core.tertiary_manager import TertiaryManager
from repro.errors import SchedulingError
from repro.hardware.disk import TABLE3_DISK
from repro.hardware.disk_array import DiskArray
from repro.hardware.tertiary import TertiaryDevice
from repro.media.catalog import Catalog
from repro.media.tape_layout import TapeLayout, TapeOrder
from repro.simulation.policy import Request
from tests.conftest import make_object


def build_policy(
    num_disks=12,
    stride=1,
    num_objects=4,
    num_subobjects=6,
    degree=3,
    capacity_objects=None,
    mode=AdmissionMode.FRAGMENTED,
    with_tertiary=True,
    queue_discipline="scan",
    placement_alignment=1,
):
    objects = [
        make_object(i, num_subobjects=num_subobjects, degree=degree)
        for i in range(num_objects)
    ]
    catalog = Catalog(objects)
    array = DiskArray(model=TABLE3_DISK, num_disks=num_disks)
    disk_manager = DiskManager(
        array=array, stride=stride, placement_alignment=placement_alignment
    )
    size = objects[0].size
    capacity = (capacity_objects if capacity_objects is not None else num_objects)
    object_manager = ObjectManager(catalog, capacity=capacity * size)
    tertiary = None
    if with_tertiary:
        tertiary = TertiaryManager(
            device=TertiaryDevice(bandwidth=40.0, reposition_time=0.6),
            tape_layout=TapeLayout(TapeOrder.FRAGMENT_ORDERED),
            interval_length=0.6048,
            disk_bandwidth=20.0,
        )
    return StaggeredStripingPolicy(
        catalog=catalog,
        disk_manager=disk_manager,
        object_manager=object_manager,
        tertiary_manager=tertiary,
        admission_mode=mode,
        queue_discipline=queue_discipline,
    )


def request(request_id, object_id, issued_at=0, station=0):
    return Request(
        request_id=request_id,
        station_id=station,
        object_id=object_id,
        issued_at=issued_at,
    )


def run_until_complete(policy, horizon=500):
    completions = []
    for interval in range(horizon):
        completions.extend(policy.advance(interval))
        if policy.pending_count() == 0:
            break
    return completions


class TestSingleDisplay:
    def test_resident_object_plays_to_completion(self):
        policy = build_policy()
        policy.preload([0])
        policy.submit(request(1, 0), interval=0)
        completions = run_until_complete(policy)
        assert len(completions) == 1
        done = completions[0]
        assert done.deliver_start == 0
        assert done.finished_at == 5  # 6 subobjects
        assert done.startup_latency == 0

    def test_slots_fully_released_after_completion(self):
        policy = build_policy()
        policy.preload([0])
        policy.submit(request(1, 0), interval=0)
        for interval in range(20):
            policy.advance(interval)
        assert policy.disk_manager.pool.free_count == 12

    def test_miss_triggers_materialisation_then_display(self):
        policy = build_policy()
        policy.submit(request(1, 0), interval=0)
        completions = run_until_complete(policy, horizon=200)
        assert len(completions) == 1
        assert completions[0].startup_latency > 0
        assert policy.object_manager.is_resident(0)
        assert policy.stats()["tertiary_completed"] == 1.0

    def test_missing_tertiary_raises_on_miss(self):
        policy = build_policy(with_tertiary=False)
        with pytest.raises(SchedulingError):
            policy.submit(request(1, 0), interval=0)


class TestConcurrency:
    def test_pipelined_displays_of_same_object(self):
        """Two displays of one object overlap in time (no replication
        needed — the paper's core claim about striping)."""
        policy = build_policy(num_disks=12, num_subobjects=4)
        policy.preload([0])
        policy.submit(request(1, 0), interval=0)
        policy.advance(0)
        policy.submit(request(2, 0, issued_at=1), interval=1)
        completions = run_until_complete(policy)
        assert len(completions) == 2
        finishes = sorted(c.finished_at for c in completions)
        assert finishes[0] == 3  # first display unobstructed
        assert finishes[0] < finishes[1] <= 8  # second overlaps, trails

    def test_disjoint_objects_run_in_parallel(self):
        policy = build_policy(num_disks=12, num_objects=4, degree=3,
                              placement_alignment=3)
        policy.preload([0, 1, 2, 3])
        for object_id in range(4):
            policy.submit(request(object_id + 1, object_id), interval=0)
        completions = run_until_complete(policy)
        assert len(completions) == 4
        # 12 drives / M=3 = 4 concurrent: everyone finishes together.
        assert {c.finished_at for c in completions} == {5}

    def test_oversubscription_queues(self):
        policy = build_policy(num_disks=6, num_objects=4, degree=3,
                              num_subobjects=4)
        policy.preload([0, 1, 2, 3])
        for object_id in range(4):
            policy.submit(request(object_id + 1, object_id), interval=0)
        completions = run_until_complete(policy)
        assert len(completions) == 4
        latencies = sorted(c.startup_latency for c in completions)
        assert latencies[0] == 0
        assert latencies[-1] > 0


class TestEvictionFlow:
    def test_lfu_eviction_makes_room(self):
        policy = build_policy(num_objects=3, capacity_objects=2)
        policy.preload([0, 1])
        # Touch object 1 so object 0 is the LFU victim.
        policy.submit(request(1, 1), interval=0)
        run_until_complete(policy, horizon=100)
        policy.submit(request(2, 2), interval=100)
        for interval in range(100, 300):
            policy.advance(interval)
            if policy.pending_count() == 0:
                break
        assert policy.object_manager.is_resident(2)
        assert not policy.object_manager.is_resident(0)
        assert policy.object_manager.is_resident(1)

    def test_pinned_objects_defer_placement(self):
        policy = build_policy(num_objects=3, capacity_objects=2,
                              num_subobjects=8)
        policy.preload([0, 1])
        policy.submit(request(1, 0), interval=0)
        policy.submit(request(2, 1), interval=0)
        policy.advance(0)
        # Both resident objects now pinned by active displays; a miss
        # cannot evict yet but must not crash.
        policy.submit(request(3, 2), interval=1)
        completions = []
        for interval in range(1, 400):
            completions.extend(policy.advance(interval))
            if len(completions) == 3:
                break
        assert len(completions) == 3


class TestQueueDisciplines:
    def test_scan_lets_later_requests_bypass(self):
        policy = build_policy(num_disks=6, num_objects=3, degree=3,
                              num_subobjects=6, queue_discipline="scan")
        policy.preload([0, 1, 2])
        # Object 0's display occupies half the drives.
        policy.submit(request(1, 0), interval=0)
        policy.advance(0)
        # Object 1 placed at drive 1: overlaps the active display ->
        # cannot claim; object 2 at drive 2 also overlaps.  Use a
        # second request for object 0 (start drive 0): also blocked.
        # Scan discipline still lets anyone who CAN claim do so.
        policy.submit(request(2, 1), interval=1)
        policy.submit(request(3, 2), interval=1)
        completions = run_until_complete(policy, horizon=200)
        assert len(completions) == 3

    def test_fcfs_blocks_behind_head(self):
        policy = build_policy(num_disks=9, num_objects=3, degree=3,
                              num_subobjects=9, queue_discipline="fcfs")
        policy.preload([0, 1, 2])
        policy.submit(request(1, 0), interval=0)
        policy.advance(0)
        # Head request: same object 0 (blocked by the active display's
        # slots for a while); a request behind it could run elsewhere
        # but must wait under FCFS at least one interval.
        policy.submit(request(2, 0, issued_at=1), interval=1)
        policy.submit(request(3, 1, issued_at=1), interval=1)
        policy.advance(1)
        latencies = {}
        for interval in range(2, 300):
            for completion in policy.advance(interval):
                latencies[completion.request.request_id] = (
                    completion.startup_latency
                )
            if len(latencies) == 3:
                break
        assert len(latencies) == 3


class TestReposition:
    def test_fast_forward_shortens_display(self):
        policy = build_policy(num_subobjects=12)
        policy.preload([0])
        policy.submit(request(1, 0), interval=0)
        policy.advance(0)
        display_id = next(iter(policy._active))
        policy.advance(1)
        policy.reposition(display_id, target_subobject=9, interval=2)
        completions = []
        for interval in range(2, 60):
            completions.extend(policy.advance(interval))
            if completions:
                break
        assert len(completions) == 1
        # Only 3 subobjects remained: finishes quickly.
        assert completions[0].finished_at < 12
        # All slots eventually come home.
        for interval in range(interval + 1, interval + 20):
            policy.advance(interval)
        assert policy.disk_manager.pool.free_count == 12

    def test_reposition_inactive_display_rejected(self):
        policy = build_policy()
        with pytest.raises(SchedulingError):
            policy.reposition(999, 0, 0)


class TestStats:
    def test_stats_shape(self):
        policy = build_policy()
        policy.preload([0])
        policy.submit(request(1, 0), interval=0)
        run_until_complete(policy)
        stats = policy.stats()
        assert stats["completed_displays"] == 1.0
        assert stats["hit_rate"] == 1.0
        assert "tertiary_utilization" in stats
        assert stats["resident_objects"] == 1.0
