"""Tests for low-bandwidth objects and Figure 7 (§3.2.3)."""

from __future__ import annotations

import pytest

from repro.core.lowbw import (
    buffer_demand_halves,
    degree_in_halves,
    figure7_schedule,
    half_disk_waste,
    validate_figure7_schedule,
    whole_disk_waste,
)
from repro.errors import ConfigurationError


class TestRoundingWaste:
    def test_paper_example_30mbps(self):
        """30 mbps on 20 mbps drives wastes 25% of two drives."""
        assert whole_disk_waste(30.0, 20.0) == pytest.approx(0.25)

    def test_paper_example_exact_half_fit(self):
        """B = 3/2 B_disk fits exactly in 3 logical half-disks."""
        assert half_disk_waste(30.0, 20.0) == pytest.approx(0.0)

    def test_half_disks_never_worse(self):
        for display in (5.0, 11.0, 25.0, 33.0, 47.0, 61.0):
            assert half_disk_waste(display, 20.0) <= whole_disk_waste(
                display, 20.0
            ) + 1e-12

    def test_multiple_of_disk_wastes_nothing(self):
        assert whole_disk_waste(100.0, 20.0) == pytest.approx(0.0)
        assert half_disk_waste(100.0, 20.0) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            whole_disk_waste(0.0, 20.0)
        with pytest.raises(ConfigurationError):
            half_disk_waste(10.0, 0.0)


class TestDegreeInHalves:
    def test_values(self):
        assert degree_in_halves(10.0, 20.0) == 1
        assert degree_in_halves(20.0, 20.0) == 2
        assert degree_in_halves(30.0, 20.0) == 3
        assert degree_in_halves(100.0, 20.0) == 10

    def test_buffer_demand_matches_halves(self):
        assert buffer_demand_halves(30.0, 20.0) == 3


class TestFigure7:
    def test_first_interval_matches_paper(self):
        actions = figure7_schedule(3)
        # First half-interval: read X0, transmit X0a.
        assert actions[0].reads == ("X0",)
        assert actions[0].transmits == ("X0a",)
        # Second half: read Y0, transmit X0b (buffered) and Y0a.
        assert actions[1].reads == ("Y0",)
        assert set(actions[1].transmits) == {"X0b", "Y0a"}

    def test_second_interval_carries_y_buffer(self):
        actions = figure7_schedule(3)
        assert actions[2].reads == ("X1",)
        assert set(actions[2].transmits) == {"X1a", "Y0b"}

    def test_trailing_drain(self):
        actions = figure7_schedule(2)
        assert actions[-1].reads == ()
        assert actions[-1].transmits == ("Y1b",)

    def test_schedule_validates_clean(self):
        validate_figure7_schedule(figure7_schedule(10))

    def test_both_streams_continuous(self):
        actions = figure7_schedule(5)
        validate_figure7_schedule(actions)  # raises on any gap

    def test_validator_catches_duplicates(self):
        actions = figure7_schedule(2)
        broken = actions + [actions[0]]
        with pytest.raises(ConfigurationError):
            validate_figure7_schedule(broken)

    def test_validator_catches_gaps(self):
        actions = figure7_schedule(3)
        with pytest.raises(ConfigurationError):
            validate_figure7_schedule(actions[:2] + actions[3:])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            figure7_schedule(0)
