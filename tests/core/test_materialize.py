"""Tests for disk-side materialisation jobs."""

from __future__ import annotations

import pytest

from repro.core.materialize import (
    MaterializationJob,
    disk_side_intervals,
    job_duration_intervals,
    writer_passes,
)
from repro.core.virtual_disks import SlotPool
from repro.errors import ConfigurationError
from repro.media.tape_layout import TapeLayout, TapeOrder
from tests.conftest import make_object


class TestPassArithmetic:
    def test_paper_m4_w2_is_two_passes(self):
        assert writer_passes(4, 2) == 2

    def test_table3_m5_w2_is_three_passes(self):
        assert writer_passes(5, 2) == 3

    def test_disk_side_intervals(self):
        obj = make_object(num_subobjects=3000, degree=5)
        assert disk_side_intervals(obj, 2) == 9000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            writer_passes(0, 2)


class TestDuration:
    def test_disk_side_dominates_fragment_ordered(self):
        obj = make_object(num_subobjects=100, degree=5, fragment_size=12.096)
        # Tape side: size/40 + reposition ~ 151.7s / 0.6048 ~ 251 ivs.
        duration = job_duration_intervals(
            obj,
            write_degree=2,
            tape_layout=TapeLayout(TapeOrder.FRAGMENT_ORDERED),
            tertiary_service_time=obj.size / 40.0 + 5.0,
            interval_length=0.6048,
        )
        assert duration == disk_side_intervals(obj, 2)

    def test_tape_side_dominates_sequential(self):
        obj = make_object(num_subobjects=100, degree=2, fragment_size=12.096)
        slow_service = 100 * 5.0 + obj.size / 40.0
        duration = job_duration_intervals(
            obj,
            write_degree=2,
            tape_layout=TapeLayout(TapeOrder.SEQUENTIAL),
            tertiary_service_time=slow_service,
            interval_length=0.6048,
        )
        assert duration > disk_side_intervals(obj, 2)


class TestJobLifecycle:
    def test_lanes_claim_lazily_and_release(self):
        pool = SlotPool(num_disks=10, stride=1)
        obj = make_object(num_subobjects=5, degree=4)
        job = MaterializationJob(
            job_id="m1", obj=obj, start_disk=3, write_degree=2,
            duration_intervals=10,
        )
        assert job.try_claim(pool, 0)
        assert job.fully_laned
        assert job.started_at == 0
        assert job.finish_interval == 9
        assert len(pool.slots_of("m1")) == 2
        job.release(pool)
        assert pool.free_count == 10

    def test_partial_claim_when_target_busy(self):
        pool = SlotPool(num_disks=10, stride=1)
        pool.claim(pool.slot_at(3, 0), "other")
        obj = make_object(num_subobjects=5, degree=4)
        job = MaterializationJob(
            job_id="m1", obj=obj, start_disk=3, write_degree=2,
            duration_intervals=10,
        )
        assert not job.try_claim(pool, 0)
        assert not job.fully_laned
        # Next interval a fresh slot rotates over drive 3.
        assert job.try_claim(pool, 1)
        assert job.started_at == 1

    def test_write_degree_capped_by_object_degree(self):
        obj = make_object(degree=1)
        job = MaterializationJob(
            job_id="m", obj=obj, start_disk=0, write_degree=4,
            duration_intervals=5,
        )
        assert len(job.lanes) == 1

    def test_validation(self):
        obj = make_object()
        with pytest.raises(ConfigurationError):
            MaterializationJob("m", obj, 0, write_degree=0, duration_intervals=5)
        with pytest.raises(ConfigurationError):
            MaterializationJob("m", obj, 0, write_degree=2, duration_intervals=0)
