"""Tests for the Disk Manager: placement, storage accounting, validation."""

from __future__ import annotations

import pytest

from repro.core.admission import AdmissionMode, Admitter
from repro.core.disk_manager import DiskManager
from repro.core.display import Display
from repro.errors import ConfigurationError, LayoutError
from repro.hardware.disk import TABLE3_DISK
from repro.hardware.disk_array import DiskArray
from tests.conftest import make_object


@pytest.fixture
def manager():
    array = DiskArray(model=TABLE3_DISK, num_disks=10)
    return DiskManager(array=array, stride=1, fragment_cylinders=1)


class TestPlacement:
    def test_round_robin_start_disks(self, manager):
        a = make_object(0, num_subobjects=4, degree=2)
        b = make_object(1, num_subobjects=4, degree=2)
        assert manager.place_object(a) == 0
        assert manager.place_object(b) == 1

    def test_alignment_respected(self):
        array = DiskArray(model=TABLE3_DISK, num_disks=9)
        manager = DiskManager(array=array, stride=3, placement_alignment=3)
        starts = [
            manager.place_object(make_object(i, num_subobjects=3, degree=3))
            for i in range(4)
        ]
        assert starts == [0, 3, 6, 0]

    def test_storage_charged_per_disk(self, manager):
        obj = make_object(0, num_subobjects=10, degree=2)  # 20 fragments
        manager.place_object(obj, start_disk=0)
        assert sum(
            manager.array.used_cylinders(d) for d in range(10)
        ) == pytest.approx(20.0)

    def test_evict_reclaims_storage(self, manager):
        obj = make_object(0, num_subobjects=10, degree=2)
        manager.place_object(obj, start_disk=0)
        manager.evict_object(0)
        assert all(manager.array.used_cylinders(d) == 0.0 for d in range(10))
        assert not manager.is_placed(0)

    def test_evict_unplaced_raises(self, manager):
        with pytest.raises(LayoutError):
            manager.evict_object(42)

    def test_storage_report(self, manager):
        manager.place_object(make_object(0, num_subobjects=10, degree=1), 0)
        report = manager.storage_report()
        assert report["mean_cylinders"] == pytest.approx(1.0)

    def test_alignment_validation(self):
        array = DiskArray(model=TABLE3_DISK, num_disks=4)
        with pytest.raises(ConfigurationError):
            DiskManager(array=array, stride=1, placement_alignment=0)


class TestValidationMode:
    def test_replays_display_reads_cleanly(self, manager):
        obj = make_object(0, num_subobjects=6, degree=3)
        manager.place_object(obj, start_disk=0)
        display = Display(display_id=1, obj=obj, start_disk=0, requested_at=0)
        admitter = Admitter(manager.pool, AdmissionMode.FRAGMENTED)
        assert admitter.try_claim(display, 0).complete
        for interval in range(6):
            manager.validate_interval([display], interval)

    def test_detects_layout_mismatch(self, manager):
        obj = make_object(0, num_subobjects=6, degree=2)
        manager.place_object(obj, start_disk=0)
        display = Display(display_id=1, obj=obj, start_disk=0, requested_at=0)
        admitter = Admitter(manager.pool, AdmissionMode.FRAGMENTED)
        admitter.try_claim(display, 0)
        # Corrupt a lane: point it at the wrong virtual disk.
        display.lanes[0].slot = (display.lanes[0].slot + 3) % 10
        with pytest.raises(LayoutError):
            manager.validate_interval([display], 0)

    def test_two_aligned_displays_never_collide(self, manager):
        a = make_object(0, num_subobjects=8, degree=3)
        b = make_object(1, num_subobjects=8, degree=3)
        manager.place_object(a, start_disk=0)
        manager.place_object(b, start_disk=5)
        admitter = Admitter(manager.pool, AdmissionMode.FRAGMENTED)
        da = Display(display_id=1, obj=a, start_disk=0, requested_at=0)
        db = Display(display_id=2, obj=b, start_disk=5, requested_at=0)
        assert admitter.try_claim(da, 0).complete
        assert admitter.try_claim(db, 0).complete
        for interval in range(8):
            manager.validate_interval([da, db], interval)
