"""Executor behavior: ordering, dedupe, failure capture, obs roll-up."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.exec import (
    ResultCache,
    RunSpec,
    SweepFailure,
    execute,
    experiment_spec,
    records_to_results,
    spec_digest,
)
from repro.exec.spec import register_kind
from repro.obs import Observability
from repro.simulation.config import ScaledConfig


@register_kind("_touch")
def _touch_kind(spec, obs=None):
    """Test-only kind: logs its execution and echoes a value."""
    log = Path(spec.params["log"])
    with log.open("a") as handle:
        handle.write(f"{spec.params['value']}\n")
    return {"value": spec.params["value"]}


@register_kind("_boom")
def _boom_kind(spec, obs=None):
    raise RuntimeError(f"boom:{spec.params.get('value')}")


def _touch_spec(tmp_path, value):
    return RunSpec(
        kind="_touch",
        params={"log": str(tmp_path / "log.txt"), "value": value},
        label=f"touch-{value}",
    )


def small_config(**overrides):
    base = {"num_stations": 2, "access_mean": 0.2}
    base.update(overrides)
    return ScaledConfig(scale=50).with_(**base)


class TestExecute:
    def test_empty_specs(self):
        assert execute([]) == []

    def test_jobs_validated(self, tmp_path):
        with pytest.raises(ConfigurationError):
            execute([_touch_spec(tmp_path, 1)], jobs=0)

    def test_records_in_spec_order(self, tmp_path):
        specs = [_touch_spec(tmp_path, value) for value in (3, 1, 2)]
        records = execute(specs)
        assert [record.payload["value"] for record in records] == [3, 1, 2]
        assert [record.index for record in records] == [0, 1, 2]
        assert all(record.ok for record in records)
        assert all(record.digest == spec_digest(spec)
                   for record, spec in zip(records, specs))

    def test_identical_specs_simulate_once(self, tmp_path):
        specs = [_touch_spec(tmp_path, 7) for _ in range(3)]
        records = execute(specs)
        log = (tmp_path / "log.txt").read_text().splitlines()
        assert log == ["7"]  # one execution
        assert [record.payload["value"] for record in records] == [7, 7, 7]
        assert [record.cached for record in records] == [False, True, True]

    def test_cache_hit_does_no_work(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = _touch_spec(tmp_path, 9)
        execute([spec], cache=cache)
        execute([spec], cache=cache)
        log = (tmp_path / "log.txt").read_text().splitlines()
        assert log == ["9"]  # second invocation came from the cache
        assert cache.hits == 1

    def test_failure_yields_error_record_not_crash(self, tmp_path):
        specs = [
            RunSpec(kind="_boom", params={"value": 1}, label="boom-1"),
            _touch_spec(tmp_path, 2),
        ]
        records = execute(specs)
        assert records[0].status == "error"
        assert "boom:1" in records[0].error
        assert records[1].ok and records[1].payload["value"] == 2

    def test_failures_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = RunSpec(kind="_boom", params={"value": 3})
        execute([spec], cache=cache)
        assert len(cache) == 0

    def test_records_to_results_raises_sweep_failure(self):
        specs = [RunSpec(kind="_boom", params={"value": 4}, label="b4")]
        with pytest.raises(SweepFailure) as excinfo:
            records_to_results(execute(specs))
        assert "b4" in str(excinfo.value)
        assert excinfo.value.failures[0].error is not None

    def test_sweep_failure_message_caps_the_list(self):
        from repro.exec.executor import MAX_LISTED_FAILURES, RunRecord

        failures = [
            RunRecord(
                index=i, kind="experiment", label=f"row-{i}", digest="",
                status="error", error=f"Boom {i}",
            )
            for i in range(MAX_LISTED_FAILURES + 4)
        ]
        message = str(SweepFailure(failures))
        assert message.startswith("7 of the sweep's runs failed: ")
        for i in range(MAX_LISTED_FAILURES):
            assert f"row-{i}: Boom {i}" in message
        assert f"row-{MAX_LISTED_FAILURES}" not in message
        assert "... and 4 more" in message
        assert "journal" not in message  # unjournaled sweep: no hint

    def test_sweep_failure_message_names_the_journal(self):
        from repro.exec.executor import RunRecord

        record = RunRecord(
            index=0, kind="experiment", label="row", digest="",
            status="error", error="Boom",
            sweep_id="abcd1234", journal_path="/tmp/j/abcd1234.jsonl",
        )
        message = str(SweepFailure([record]))
        assert "(journal: /tmp/j/abcd1234.jsonl" in message
        assert "repro sweep-resume abcd1234" in message

    def test_parallel_execution_matches_serial(self):
        specs = [
            experiment_spec(small_config(num_stations=n)) for n in (1, 2)
        ]
        serial = execute(specs, jobs=1)
        parallel = execute(specs, jobs=2)
        assert [r.payload for r in serial] == [r.payload for r in parallel]

    def test_parallel_failure_capture(self, tmp_path):
        specs = [
            RunSpec(kind="experiment", config=None, label="no-config"),
            experiment_spec(small_config()),
        ]
        records = execute(specs, jobs=2)
        assert records[0].status == "error"
        assert "ConfigurationError" in records[0].error
        assert records[1].ok

    def test_unknown_kind_is_an_error_record(self):
        records = execute([RunSpec(kind="_no_such_kind")])
        assert records[0].status == "error"
        assert "unknown run kind" in records[0].error


class TestObsRollup:
    def test_exec_metrics_rolled_up(self, tmp_path):
        obs = Observability(level="metrics")
        cache = ResultCache(tmp_path / "cache")
        specs = [_touch_spec(tmp_path, value) for value in (1, 2)]
        execute(specs, cache=cache, obs=obs)
        execute(specs, cache=cache, obs=obs)
        exec_runs = [run for run in obs.runs if "sweep-exec" in run["label"]]
        assert len(exec_runs) == 2
        cold = exec_runs[0]["metrics"]
        warm = exec_runs[1]["metrics"]
        assert cold["exec.runs"]["value"] == 2
        assert cold["exec.cache_hits"]["value"] == 0
        assert cold["exec.executed"]["value"] == 2
        assert warm["exec.cache_hits"]["value"] == 2
        assert warm["exec.executed"]["value"] == 0
        assert cold["exec.run_seconds"]["count"] == 2

    def test_exec_profiler_phases(self, tmp_path):
        obs = Observability(level="metrics")
        specs = [_touch_spec(tmp_path, value) for value in (1, 2)]
        execute(specs, obs=obs)
        exec_run = [r for r in obs.runs if "sweep-exec" in r["label"]][0]
        assert {"plan", "execute", "collect"} <= set(exec_run["profile"])

    def test_single_spec_opens_no_exec_run(self, tmp_path):
        obs = Observability(level="metrics")
        execute([_touch_spec(tmp_path, 1)], obs=obs)
        assert all("sweep-exec" not in run["label"] for run in obs.runs)

    def test_serial_experiment_runs_still_observed(self):
        obs = Observability(level="metrics")
        specs = [experiment_spec(small_config(num_stations=n))
                 for n in (1, 2)]
        execute(specs, obs=obs)
        labels = [run["label"] for run in obs.runs]
        assert sum("stations=1" in label for label in labels) == 1
        assert sum("stations=2" in label for label in labels) == 1
        assert sum("sweep-exec" in label for label in labels) == 1
