"""The unified retry/backoff contract (repro.exec.retry)."""

import pytest

from repro.exec import retry as retry_module
from repro.exec.retry import RetryPolicy, retry_call
from repro.exec.supervisor import Supervision


@pytest.fixture
def no_jitter(monkeypatch):
    monkeypatch.setattr(
        retry_module.random, "uniform", lambda low, high: 0.0
    )


class TestRetryPolicy:
    def test_exponential_shape(self, no_jitter):
        policy = RetryPolicy(backoff_base=0.5, backoff_cap=30.0)
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [
            0.5, 1.0, 2.0, 4.0,
        ]

    def test_cap_bounds_the_delay(self, no_jitter):
        policy = RetryPolicy(backoff_base=10.0, backoff_cap=15.0)
        assert policy.delay(3) == 15.0
        assert policy.delay(10) == 15.0

    def test_jitter_bounds(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=30.0, jitter=0.25)
        samples = [policy.delay(2) for _ in range(200)]
        assert all(2.0 <= sample <= 2.5 for sample in samples)
        assert len(set(samples)) > 1  # actually jittered

    def test_should_retry_honours_max_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)


class TestRetryCall:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}
        naps = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ValueError(f"boom {calls['n']}")
            return 7

        seen = []
        result = retry_call(
            flaky,
            RetryPolicy(max_attempts=3, backoff_base=0.01, jitter=0.0),
            retryable=(ValueError,),
            on_retry=lambda attempt, delay, error: seen.append(
                (attempt, str(error))
            ),
            sleep=naps.append,
        )
        assert result == 7
        assert calls["n"] == 3
        assert seen == [(1, "boom 1"), (2, "boom 2")]
        assert len(naps) == 2 and naps[1] > naps[0]

    def test_exhaustion_reraises_the_last_error(self):
        naps = []

        def always():
            raise ValueError("persistent")

        with pytest.raises(ValueError, match="persistent"):
            retry_call(
                always,
                RetryPolicy(max_attempts=3, backoff_base=0.01, jitter=0.0),
                retryable=(ValueError,),
                sleep=naps.append,
            )
        assert len(naps) == 2  # no sleep after the final attempt

    def test_non_retryable_propagates_immediately(self):
        calls = {"n": 0}

        def poisoned():
            calls["n"] += 1
            raise KeyError("deterministic")

        with pytest.raises(KeyError):
            retry_call(
                poisoned,
                RetryPolicy(max_attempts=5),
                retryable=(ValueError,),
                sleep=lambda _: pytest.fail("must not sleep"),
            )
        assert calls["n"] == 1


class TestUnification:
    def test_supervision_backoff_rides_the_shared_policy(self, no_jitter):
        options = Supervision()
        policy = options.retry_policy()
        assert isinstance(policy, RetryPolicy)
        for attempt in (1, 2, 3):
            assert options.backoff_delay(attempt) == policy.delay(attempt)

    def test_master_client_policy_mirrors_its_knobs(self):
        from repro.cluster.protocol import MasterClient

        client = MasterClient(
            "http://127.0.0.1:1", retries=5, backoff_base=0.1
        )
        assert client.policy.max_attempts == 5
        assert client.policy.backoff_base == 0.1
