"""Supervised execution: worker death, timeouts, retries, quarantine.

The regression at the heart of this file: under the old bare
``Pool.imap_unordered`` executor, a worker killed by the OS (OOM
killer, ``kill -9``) simply never answered and the sweep hung forever.
The supervised pool must instead surface a structured failure record
— and still finish every other run.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.exec import RunSpec, Supervision, execute
from repro.exec.spec import register_kind
from repro.exec.supervisor import classify_failure


pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker tests rely on fork inheriting test-registered kinds",
)


@register_kind("_suicide")
def _suicide_kind(spec, obs=None):
    """Simulates an OOM kill: the worker dies without a word."""
    os.kill(os.getpid(), signal.SIGKILL)


@register_kind("_sleep")
def _sleep_kind(spec, obs=None):
    time.sleep(float(spec.params.get("seconds", 60.0)))
    return {"slept": True}


@register_kind("_flaky_once")
def _flaky_once_kind(spec, obs=None):
    """Fails (transiently) until its marker file exists."""
    marker = Path(spec.params["marker"])
    if not marker.exists():
        marker.write_text("attempted")
        raise RuntimeError("transient failure, try again")
    return {"ok": True, "marker": str(marker)}


@register_kind("_deterministic_failure")
def _deterministic_failure_kind(spec, obs=None):
    raise ConfigurationError("this spec can never succeed")


@register_kind("_echo")
def _echo_kind(spec, obs=None):
    return {"value": spec.params["value"]}


def _echo_specs(count):
    return [
        RunSpec(kind="_echo", params={"value": n}, label=f"echo-{n}")
        for n in range(count)
    ]


def fast_supervision(**overrides):
    options = {
        "max_attempts": 2,
        "backoff_base": 0.02,
        "backoff_cap": 0.1,
        "heartbeat_interval": 0.05,
        "heartbeat_timeout": 10.0,
        "handle_signals": False,
    }
    options.update(overrides)
    return Supervision(**options)


class TestWorkerDeath:
    def test_killed_worker_is_a_structured_failure_not_a_hang(self):
        """The OOM-kill regression: the sweep must terminate, the dead
        worker's spec must fail with a record naming the death, and
        every other spec must still produce its row."""
        specs = [RunSpec(kind="_suicide", label="kamikaze")] + _echo_specs(3)
        start = time.monotonic()
        records = execute(
            specs, jobs=2, supervision=fast_supervision(max_attempts=2)
        )
        elapsed = time.monotonic() - start
        assert elapsed < 30.0  # a hang here would trip the suite timeout
        assert records[0].status == "error"
        assert "died" in records[0].error
        assert records[0].attempts == 2  # death is transient: retried once
        assert not records[0].poisoned
        assert [r.payload["value"] for r in records[1:]] == [0, 1, 2]

    def test_surviving_rows_match_serial_execution(self):
        specs = [RunSpec(kind="_suicide", label="kamikaze")] + _echo_specs(4)
        parallel = execute(specs, jobs=3, supervision=fast_supervision())
        serial = execute(specs[1:], jobs=1, supervision=fast_supervision())
        assert [r.payload for r in parallel[1:]] == [r.payload for r in serial]


class TestTimeouts:
    def test_run_timeout_kills_and_fails_the_run(self):
        specs = [
            RunSpec(kind="_sleep", params={"seconds": 60.0}, label="hog")
        ] + _echo_specs(2)
        records = execute(
            specs,
            jobs=2,
            supervision=fast_supervision(run_timeout=0.5, max_attempts=1),
        )
        assert records[0].status == "error"
        assert "run-timeout" in records[0].error
        assert all(r.ok for r in records[1:])

    def test_run_timeout_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "12.5")
        assert Supervision().run_timeout == 12.5
        monkeypatch.delenv("REPRO_RUN_TIMEOUT")
        assert Supervision().run_timeout is None

    def test_run_timeout_validated(self):
        with pytest.raises(ConfigurationError):
            Supervision(run_timeout=-1.0)


class TestRetries:
    def test_transient_failure_retries_and_succeeds(self, tmp_path):
        marker = tmp_path / "marker"
        specs = [
            RunSpec(kind="_flaky_once", params={"marker": str(marker)})
        ] + _echo_specs(2)
        records = execute(specs, jobs=2, supervision=fast_supervision())
        assert records[0].ok
        assert records[0].attempts == 2
        assert records[0].payload["ok"] is True

    def test_transient_failure_retries_serially_too(self, tmp_path):
        marker = tmp_path / "marker"
        specs = [RunSpec(kind="_flaky_once", params={"marker": str(marker)})]
        records = execute(specs, jobs=1, supervision=fast_supervision())
        assert records[0].ok and records[0].attempts == 2

    def test_retry_budget_is_bounded(self, tmp_path):
        """A spec that always fails transiently settles as an error
        after exactly max_attempts attempts."""
        specs = [
            RunSpec(kind="_boom_always", params={}),
        ]

        @register_kind("_boom_always")
        def _boom_always(spec, obs=None):
            raise RuntimeError("always transient")

        records = execute(
            specs, jobs=1, supervision=fast_supervision(max_attempts=3)
        )
        assert records[0].status == "error"
        assert records[0].attempts == 3
        assert not records[0].poisoned

    def test_max_attempts_validated(self):
        with pytest.raises(ConfigurationError):
            Supervision(max_attempts=0)

    def test_backoff_grows_and_caps(self):
        options = Supervision(backoff_base=1.0, backoff_cap=4.0)
        first = options.backoff_delay(1)
        fourth = options.backoff_delay(4)
        assert 1.0 <= first <= 1.25
        assert 4.0 <= fourth <= 5.0  # capped at 4, plus <= 25% jitter


class TestPoison:
    def test_deterministic_failure_is_quarantined_not_retried(self):
        specs = [RunSpec(kind="_deterministic_failure")] + _echo_specs(2)
        records = execute(specs, jobs=2, supervision=fast_supervision())
        assert records[0].status == "error"
        assert records[0].poisoned
        assert records[0].attempts == 1  # no retry: same code, same spec
        assert all(r.ok for r in records[1:])

    def test_classification(self):
        assert classify_failure(ConfigurationError("x"))
        assert classify_failure(SchedulingError("x"))
        assert not classify_failure(RuntimeError("x"))
        assert not classify_failure(MemoryError())
