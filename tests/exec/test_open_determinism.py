"""Execution-strategy independence for the open-workload grid.

The executor's hard contract (tests/exec/test_determinism.py) extends
to open arrivals: ``--jobs 1``, ``--jobs 4``, and a warm-cache pass
over the same open sweep must produce byte-identical rows, and the
arrival parameters must be visible to the cache key so an open run
can never be served a closed run's cached payload (or vice versa).
"""

from __future__ import annotations

import os

from repro.exec import (
    ResultCache,
    canonical_json,
    execute,
    experiment_spec,
    spec_digest,
)
from repro.exec.hashing import canonical
from repro.experiments.open_workload import (
    cell_config,
    nominal_capacity_rate,
    run_open_workload,
)
from repro.simulation.config import ScaledConfig

PARALLEL_JOBS = int(os.environ.get("REPRO_EXEC_JOBS", "4"))


def open_specs():
    """A heterogeneous open grid: both techniques, poisson and mmpp,
    one fully shaped cell (diurnal + flash crowd + hotspot)."""
    base = ScaledConfig(scale=50)
    rate = round(0.9 * nominal_capacity_rate(base), 9)
    poisson = cell_config(base, "simple", rate, deadline=10, zipf_s=0.8)
    staggered = cell_config(base, "staggered", rate)
    mmpp = base.with_(
        arrival="mmpp",
        mmpp_rates=(rate * 0.5, rate * 1.5),
        mmpp_sojourn=(60.0, 60.0),
        deadline_intervals=10,
        zipf_s=0.8,
    )
    shaped = cell_config(base, "simple", rate).with_(
        diurnal_period=300.0,
        diurnal_amplitude=0.4,
        burst_at=150,
        burst_duration=40,
        burst_factor=2.0,
        burst_hotspot=0.5,
    )
    return [
        experiment_spec(config)
        for config in (poisson, staggered, mmpp, shaped)
    ]


def rows_bytes(records) -> str:
    assert all(record.ok for record in records)
    return canonical_json([record.payload for record in records])


class TestOpenGridByteIdentical:
    def test_serial_parallel_and_cache_identical(self, tmp_path):
        specs = open_specs()
        serial = rows_bytes(execute(specs, jobs=1))
        parallel = rows_bytes(execute(specs, jobs=PARALLEL_JOBS))
        assert parallel == serial

        cache = ResultCache(tmp_path / "cache")
        cold = rows_bytes(execute(specs, jobs=PARALLEL_JOBS, cache=cache))
        warm_records = execute(specs, jobs=PARALLEL_JOBS, cache=cache)
        assert cold == serial
        assert rows_bytes(warm_records) == serial
        assert all(record.cached for record in warm_records)

    def test_open_rows_carry_open_accounting(self):
        """The payloads under comparison are genuinely open rows."""
        for record in execute(open_specs(), jobs=1):
            assert record.payload["arrival"] in ("poisson", "mmpp")
            assert record.payload["offered"] > 0

    def test_grid_experiment_independent_of_jobs(self):
        base = ScaledConfig(scale=50)
        rates = [round(0.9 * nominal_capacity_rate(base), 9)]
        serial = run_open_workload(
            scale=50, rates=rates, techniques=("simple",), jobs=1
        )
        parallel = run_open_workload(
            scale=50, rates=rates, techniques=("simple",), jobs=2
        )
        assert serial == parallel
        point = serial["simple"][0]
        assert point.offered > 0
        assert 0.0 <= point.blocking_probability <= 1.0


class TestArrivalParamsInDigest:
    def test_arrival_fields_present_in_canonical_form(self):
        """spec_digest hashes the canonical config document; the
        arrival knobs must appear there with their configured
        values."""
        base = ScaledConfig(scale=50)
        config = cell_config(
            base, "simple", 0.05, deadline=10, zipf_s=0.8
        ).with_(burst_at=100, burst_duration=20, burst_factor=3.0)
        document = canonical(config)
        assert document["arrival"] == "poisson"
        assert document["arrival_rate"] == 0.05
        assert document["deadline_intervals"] == 10
        assert document["zipf_s"] == 0.8
        assert document["burst_at"] == 100
        assert document["burst_factor"] == 3.0

    def test_open_specs_hash_apart_from_closed_and_each_other(self):
        closed = experiment_spec(ScaledConfig(scale=50))
        digests = [spec_digest(closed)] + [
            spec_digest(spec) for spec in open_specs()
        ]
        assert len(set(digests)) == len(digests)
