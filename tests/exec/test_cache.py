"""Unit tests for the content-addressed result cache."""

from __future__ import annotations

import json
import os

from repro.exec import ResultCache, cache_status_rows, resolve_cache_dir
from repro.exec.cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR

DIGEST_A = "ab" + "0" * 62
DIGEST_B = "cd" + "1" * 62


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(DIGEST_A, {"kind": "experiment", "payload": {"x": 1},
                             "status": "ok", "duration_s": 0.5})
        record = cache.get(DIGEST_A)
        assert record["payload"] == {"x": 1}
        assert record["digest"] == DIGEST_A
        assert "created_at" in record
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(DIGEST_A) is None
        assert cache.misses == 1

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(DIGEST_A, {"payload": {}})
        assert path.parent.name == DIGEST_A[:2]
        assert path.name == f"{DIGEST_A}.json"

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for(DIGEST_A)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(DIGEST_A) is None

    def test_digest_mismatch_is_a_miss(self, tmp_path):
        """An entry stored under the wrong name is never served."""
        cache = ResultCache(tmp_path)
        path = cache.path_for(DIGEST_A)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"digest": DIGEST_B, "payload": {}}))
        assert cache.get(DIGEST_A) is None

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(DIGEST_A, {"payload": {}})
        leftovers = [p for p in tmp_path.rglob("*") if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_len_and_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(DIGEST_A, {"kind": "experiment", "payload": {}})
        cache.put(DIGEST_B, {"kind": "mixed_media", "payload": {}})
        assert len(cache) == 2
        kinds = sorted(record["kind"] for record in cache.entries())
        assert kinds == ["experiment", "mixed_media"]

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(DIGEST_A, {"payload": {}})
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_status_rows(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(DIGEST_A, {"kind": "experiment", "payload": {},
                             "duration_s": 1.25})
        cache.put(DIGEST_B, {"kind": "experiment", "payload": {},
                             "duration_s": 0.75})
        rows = cache_status_rows(cache)
        assert rows == [
            {"kind": "experiment", "runs": 2, "sim_seconds_banked": 2.0,
             "newest_age_s": rows[0]["newest_age_s"]}
        ]
        assert rows[0]["newest_age_s"] < 60.0


class TestResolveCacheDir:
    def test_explicit_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        assert resolve_cache_dir(tmp_path / "flag") == tmp_path / "flag"

    def test_environment_next(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        assert resolve_cache_dir(None) == tmp_path / "env"

    def test_default_last(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert str(resolve_cache_dir(None)) == DEFAULT_CACHE_DIR
