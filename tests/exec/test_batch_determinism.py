"""Executor determinism with the batched kernel on.

The batched admission/settle path must be invisible to the executor
contract: ``--jobs 1``, ``--jobs 4``, and a warm-cache pass over the
same sweep produce byte-identical rows with ``REPRO_BATCH_KERNEL=on``,
and those rows are byte-identical to a scalar (``REPRO_BATCH_KERNEL=
off``) execution of the same specs — under ``--sanitize strict`` with
faults armed, so every invariant sweep (including the batch index's
own) runs on every interval.  The switch propagates to worker
processes through the environment, which is exactly how a user would
flip it.
"""

from __future__ import annotations

import os

import pytest

from repro import fastpath, switches
from repro.exec import ResultCache, canonical_json, execute, experiment_spec
from repro.simulation.config import ScaledConfig

PARALLEL_JOBS = int(os.environ.get("REPRO_EXEC_JOBS", "4"))

pytestmark = pytest.mark.skipif(
    not fastpath.numpy_available(), reason="batched kernel needs numpy"
)


def sweep_specs():
    """Staggered (FRAGMENTED) and simple (CONTIGUOUS) admission, with
    mirrored-redundancy faults armed and strict sanitization."""
    base = ScaledConfig(scale=50).with_(access_mean=0.2, sanitize="strict")
    return [
        experiment_spec(base.with_(**point))
        for point in (
            {"technique": "staggered", "num_stations": 8,
             "mttf": 60.0, "mttr": 8.0, "redundancy": "mirror"},
            {"technique": "staggered", "num_stations": 16},
            {"technique": "simple", "num_stations": 8,
             "mttf": 40.0, "mttr": 6.0, "redundancy": "none",
             "on_fault": "abort"},
        )
    ]


def rows_bytes(records) -> str:
    assert all(record.ok for record in records)
    return canonical_json([record.payload for record in records])


class TestBatchedExecutorDeterminism:
    def test_serial_parallel_and_cache_identical(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv(switches.BATCH_KERNEL_ENV, "on")
        specs = sweep_specs()
        serial = rows_bytes(execute(specs, jobs=1))
        parallel = rows_bytes(execute(specs, jobs=PARALLEL_JOBS))
        assert parallel == serial

        cache = ResultCache(tmp_path / "cache")
        cold = rows_bytes(execute(specs, jobs=PARALLEL_JOBS, cache=cache))
        warm_records = execute(specs, jobs=PARALLEL_JOBS, cache=cache)
        assert cold == serial
        assert rows_bytes(warm_records) == serial
        assert all(record.cached for record in warm_records)

    def test_batched_rows_equal_scalar_rows(self, monkeypatch):
        """The whole-sweep cross-check: flipping the kernel switch (the
        env var workers inherit) must not move a single byte."""
        specs = sweep_specs()
        monkeypatch.setenv(switches.BATCH_KERNEL_ENV, "on")
        batched = rows_bytes(execute(specs, jobs=PARALLEL_JOBS))
        monkeypatch.setenv(switches.BATCH_KERNEL_ENV, "off")
        scalar = rows_bytes(execute(specs, jobs=PARALLEL_JOBS))
        assert batched == scalar

    def test_warm_cache_hits_across_kernel_modes(self, tmp_path,
                                                 monkeypatch):
        """The kernel switch is not part of the spec digest — it cannot
        change results, so scalar-produced cache entries must satisfy
        batched runs (and vice versa)."""
        specs = sweep_specs()
        cache = ResultCache(tmp_path / "cache")
        monkeypatch.setenv(switches.BATCH_KERNEL_ENV, "off")
        scalar = rows_bytes(execute(specs, jobs=1, cache=cache))
        monkeypatch.setenv(switches.BATCH_KERNEL_ENV, "on")
        warm = execute(specs, jobs=1, cache=cache)
        assert all(record.cached for record in warm)
        assert rows_bytes(warm) == scalar
