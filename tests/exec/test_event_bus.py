"""Integration tests: event bus + obs artifact store through execute().

The sweep-scope observability contract (docs/sweep_observability.md):

* every journaled sweep appends progress events beside its journal;
* the *set* of settled outcomes is a function of the work, not the
  scheduling — ``jobs=1`` and ``jobs=4`` agree on the settled digest;
* with ``--obs-level metrics|trace`` and a cache, per-run telemetry is
  persisted content-addressed and reused byte-identically on warm
  hits; a corrupt artifact is a miss and is rewritten.
"""

from __future__ import annotations

import json

import pytest

from repro.exec import ResultCache, RunSpec, Supervision, execute
from repro.exec.hashing import canonical_json
from repro.exec.journal import journal_root
from repro.exec.spec import register_kind, spec_digest
from repro.obs import Observability
from repro.obs.events import (
    list_event_streams,
    load_events,
    replay_events,
    settled_events_digest,
)
from repro.obs.store import ObsArtifactStore


@register_kind("_busy")
def _busy_kind(spec, obs=None):
    """Deterministic payload + deterministic telemetry when observed."""
    value = spec.params["value"]
    run = obs.begin_run(spec.describe()) if obs is not None else None
    if run is not None:
        run.registry.counter("busy.value").inc(value)
        run.registry.gauge("busy.square").set(value * value)
        obs.finish_run(run)
    return {"value": value, "square": value * value}


def busy_specs(count):
    return [
        RunSpec(kind="_busy", params={"value": n}, label=f"busy-{n}")
        for n in range(count)
    ]


def quiet(**overrides):
    options = {"handle_signals": False, "max_attempts": 1}
    options.update(overrides)
    return Supervision(**options)


def single_stream(cache_root):
    streams = list_event_streams(journal_root(cache_root))
    assert len(streams) == 1
    return streams[0]


class TestEventStream:
    def test_events_beside_journal(self, tmp_path):
        cache = ResultCache(tmp_path)
        records = execute(busy_specs(3), cache=cache, supervision=quiet())
        stream = single_stream(tmp_path)
        assert stream.name == f"{records[0].sweep_id}.events.jsonl"
        events = load_events(stream)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "sweep_begin"
        assert kinds[-1] == "sweep_end"
        assert kinds.count("run_settled") == 3
        assert kinds.count("run_leased") == 3

    def test_warm_sweep_emits_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute(busy_specs(3), cache=cache, supervision=quiet())
        execute(busy_specs(3), cache=cache, supervision=quiet())
        events = load_events(single_stream(tmp_path))
        assert [e["event"] for e in events].count("cache_hit") == 3

    def test_events_off_without_journal(self, tmp_path):
        execute(busy_specs(3), supervision=quiet())  # no cache, no journal
        assert list_event_streams(journal_root(tmp_path)) == []

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_settled_digest_scheduling_independent(self, tmp_path, jobs):
        """jobs=1 and jobs=4 produce the same *set* of settled events."""
        cache = ResultCache(tmp_path / f"cache-{jobs}")
        execute(
            busy_specs(6), jobs=jobs, cache=cache, supervision=quiet()
        )
        events = load_events(single_stream(tmp_path / f"cache-{jobs}"))
        digest = settled_events_digest(events)
        reference_cache = ResultCache(tmp_path / "reference")
        execute(busy_specs(6), jobs=1, cache=reference_cache,
                supervision=quiet())
        reference = settled_events_digest(
            load_events(single_stream(tmp_path / "reference"))
        )
        assert digest == reference

    def test_progress_replay_of_finished_sweep(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute(busy_specs(4), jobs=2, cache=cache, supervision=quiet())
        progress = replay_events(load_events(single_stream(tmp_path)))
        assert progress.status == "complete"
        assert progress.total == 4
        assert progress.completed == 4
        assert progress.pending == 0
        assert progress.workers_spawned >= 1


class TestArtifactStore:
    def observed_execute(self, specs, cache, jobs=1, level="metrics"):
        obs = Observability(level=level)
        records = execute(
            specs, jobs=jobs, cache=cache, obs=obs, supervision=quiet()
        )
        return records, obs

    def artifact_bytes(self, cache_root, specs):
        store = ObsArtifactStore(cache_root)
        return {
            spec.label: store.artifact_path(spec_digest(spec)).read_bytes()
            for spec in specs
        }

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_fresh_sweep_writes_artifacts(self, tmp_path, jobs):
        specs = busy_specs(3)
        cache = ResultCache(tmp_path)
        records, obs = self.observed_execute(specs, cache, jobs=jobs)
        assert all(record.ok for record in records)
        store = ObsArtifactStore(tmp_path)
        assert len(store) == 3
        for spec in specs:
            artifact = store.get(spec_digest(spec))
            runs = artifact["runs"]
            assert len(runs) == 1
            value = spec.params["value"]
            assert runs[0]["metrics"]["busy.value"]["value"] == value

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_session_adopts_runs(self, tmp_path, jobs):
        """Parallel sweeps now carry per-run engine metrics: worker
        captures are adopted into the parent session in spec order."""
        specs = busy_specs(3)
        _, obs = self.observed_execute(specs, ResultCache(tmp_path), jobs=jobs)
        labels = [run["label"] for run in obs.runs]
        assert labels == ["busy-0", "busy-1", "busy-2",
                          "sweep-exec[3 runs]"]
        exec_metrics = obs.runs[-1]["metrics"]
        assert exec_metrics["exec.obs_artifacts"]["value"] == 3

    def test_warm_sweep_reuses_artifacts_byte_identically(self, tmp_path):
        specs = busy_specs(3)
        cache = ResultCache(tmp_path)
        self.observed_execute(specs, cache)
        before = self.artifact_bytes(tmp_path, specs)
        records, obs = self.observed_execute(specs, cache)
        assert all(record.cached for record in records)
        assert self.artifact_bytes(tmp_path, specs) == before
        # The warm session still carries every run's telemetry.
        assert [run["label"] for run in obs.runs][:3] == [
            "busy-0", "busy-1", "busy-2",
        ]
        events = load_events(single_stream(tmp_path))
        assert [e["event"] for e in events].count("artifact_hit") == 3

    def test_corrupt_artifact_is_miss_and_rewritten(self, tmp_path):
        """Mirror ResultCache corrupt->miss: the row re-executes (same
        bytes — runs are deterministic) and the artifact is rebuilt."""
        specs = busy_specs(3)
        cache = ResultCache(tmp_path)
        records, _ = self.observed_execute(specs, cache)
        reference_rows = [canonical_json(r.payload) for r in records]
        store = ObsArtifactStore(tmp_path)
        victim = spec_digest(specs[1])
        store.artifact_path(victim).write_text("{ torn artifact")
        records, _ = self.observed_execute(specs, cache)
        assert [canonical_json(r.payload) for r in records] == reference_rows
        assert records[0].cached and records[2].cached
        assert not records[1].cached  # re-executed to backfill telemetry
        rebuilt = store.get(victim)
        assert rebuilt is not None
        assert rebuilt["runs"][0]["metrics"]["busy.value"]["value"] == 1
        events = load_events(single_stream(tmp_path))
        assert [e["event"] for e in events].count("artifact_miss") == 1

    def test_unobserved_sweep_writes_no_artifacts(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute(busy_specs(3), cache=cache, supervision=quiet())
        assert len(ObsArtifactStore(tmp_path)) == 0

    def test_trace_artifacts_round_trip(self, tmp_path):
        specs = busy_specs(2)
        cache = ResultCache(tmp_path)
        _, fresh = self.observed_execute(specs, cache, level="trace")
        fresh_events = [event.to_json() for event in fresh.memory_events()]
        _, warm = self.observed_execute(specs, cache, level="trace")
        warm_events = [event.to_json() for event in warm.memory_events()]
        fresh_names = sorted(
            json.dumps(e, sort_keys=True) for e in fresh_events
        )
        warm_names = sorted(
            json.dumps(e, sort_keys=True) for e in warm_events
        )
        assert warm_names == fresh_names
