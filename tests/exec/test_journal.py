"""Sweep journal: identity, append-only durability, torn-tail recovery."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.exec import (
    SweepJournal,
    find_journal,
    journal_status_rows,
    list_journals,
    load_journal,
    sweep_id_for,
)


DIGESTS = ["d1" * 8, "d2" * 8, "d3" * 8]


def make_journal(root, digests=None, argv=("sweep", "--jobs", "2")):
    digests = digests if digests is not None else DIGESTS
    journal = SweepJournal(root, sweep_id_for(digests))
    journal.begin(list(argv), digests)
    return journal


class TestSweepIdentity:
    def test_id_is_deterministic_and_order_free(self):
        assert sweep_id_for(DIGESTS) == sweep_id_for(list(reversed(DIGESTS)))
        assert sweep_id_for(DIGESTS) == sweep_id_for(DIGESTS + [DIGESTS[0]])

    def test_different_work_different_id(self):
        assert sweep_id_for(DIGESTS) != sweep_id_for(DIGESTS[:2])


class TestJournalRoundTrip:
    def test_begin_run_end_round_trips(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record_run(
            DIGESTS[0], kind="experiment", label="row-0", status="ok",
            payload={"value": 1}, duration_s=0.5,
        )
        journal.end("interrupted")
        state = load_journal(journal.path)
        assert state.sweep_id == journal.sweep_id
        assert state.argv == ["sweep", "--jobs", "2"]
        assert state.total == 3
        assert state.completed == 1
        assert state.pending == 2
        assert state.status == "interrupted"
        assert state.runs[DIGESTS[0]]["payload"] == {"value": 1}
        assert state.resume_command == f"repro sweep-resume {journal.sweep_id}"

    def test_begin_is_idempotent_across_resumes(self, tmp_path):
        make_journal(tmp_path)
        make_journal(tmp_path)  # a resume re-opens the same journal
        lines = make_journal(tmp_path).path.read_text().splitlines()
        assert sum(1 for line in lines
                   if json.loads(line)["event"] == "begin") == 1

    def test_missing_or_beginless_journal_loads_as_none(self, tmp_path):
        assert load_journal(tmp_path / "nope.jsonl") is None
        orphan = tmp_path / "orphan.jsonl"
        orphan.write_text('{"event": "run", "digest": "xx"}\n')
        assert load_journal(orphan) is None


class TestCrashSafety:
    def test_torn_tail_is_skipped_everything_before_stands(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record_run(
            DIGESTS[0], kind="experiment", label="row-0", status="ok",
            payload={"value": 1},
        )
        with journal.path.open("a") as handle:
            handle.write('{"event": "run", "digest": "d2d2d2d2d2d2d2d2", "st')
        state = load_journal(journal.path)
        assert state is not None
        assert state.completed == 1  # the torn row never happened
        assert DIGESTS[0] in state.runs

    def test_later_records_win(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record_run(
            DIGESTS[0], kind="experiment", label="row-0", status="error",
            payload={}, error="transient", attempts=2,
        )
        journal.record_run(
            DIGESTS[0], kind="experiment", label="row-0", status="ok",
            payload={"value": 2},
        )
        state = load_journal(journal.path)
        assert state.runs[DIGESTS[0]]["status"] == "ok"
        assert state.completed == 1


class TestSettlement:
    def test_transient_errors_stay_pending_poison_settles(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record_run(
            DIGESTS[0], kind="experiment", label="ok-row", status="ok",
            payload={"value": 1},
        )
        journal.record_run(
            DIGESTS[1], kind="experiment", label="transient-row",
            status="error", payload={}, error="worker died", poisoned=False,
        )
        journal.record_run(
            DIGESTS[2], kind="experiment", label="poison-row",
            status="error", payload={}, error="bad config", poisoned=True,
        )
        state = load_journal(journal.path)
        settled = state.settled_runs()
        assert set(settled) == {DIGESTS[0], DIGESTS[2]}  # retry the transient
        assert state.poisoned == 1
        assert state.pending == 1


class TestListing:
    def test_list_and_status_rows(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record_run(
            DIGESTS[0], kind="experiment", label="row", status="ok",
            payload={},
        )
        journal.end("interrupted")
        other = make_journal(tmp_path, digests=DIGESTS[:1], argv=["run"])
        other.record_run(
            DIGESTS[0], kind="experiment", label="row", status="ok",
            payload={},
        )
        other.end("complete")
        states = list_journals(tmp_path)
        assert {s.sweep_id for s in states} == {
            journal.sweep_id, other.sweep_id
        }
        rows = journal_status_rows(tmp_path)
        by_id = {row["sweep_id"]: row for row in rows}
        assert by_id[journal.sweep_id]["status"] == "interrupted"
        assert by_id[journal.sweep_id]["completed"] == 1
        assert by_id[journal.sweep_id]["pending"] == 2
        assert by_id[other.sweep_id]["status"] == "complete"
        assert by_id[other.sweep_id]["command"] == "run"

    def test_find_journal_exact_prefix_and_errors(self, tmp_path):
        journal = make_journal(tmp_path)
        assert find_journal(tmp_path, journal.sweep_id).sweep_id == journal.sweep_id
        assert find_journal(tmp_path, journal.sweep_id[:6]).sweep_id == (
            journal.sweep_id
        )
        with pytest.raises(ConfigurationError):
            find_journal(tmp_path, "zzzz")

    def test_find_journal_no_match_lists_known_sweeps(self, tmp_path):
        journal = make_journal(tmp_path)
        other = make_journal(tmp_path, digests=DIGESTS[:1])
        with pytest.raises(ConfigurationError) as caught:
            find_journal(tmp_path, "zzzz")
        message = str(caught.value)
        assert "known sweeps" in message
        assert journal.sweep_id in message
        assert other.sweep_id in message

    def test_find_journal_no_match_empty_root(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no journals yet"):
            find_journal(tmp_path, "zzzz")

    def test_find_journal_ambiguous_prefix_lists_candidates(self, tmp_path):
        # Sweep ids are content-derived, so force a shared prefix by
        # writing journals under chosen ids directly.
        for sweep_id in ("aaaa1111", "aaaa2222"):
            SweepJournal(tmp_path, sweep_id).begin(["t"], DIGESTS)
        with pytest.raises(ConfigurationError) as caught:
            find_journal(tmp_path, "aaaa")
        message = str(caught.value)
        assert "ambiguous" in message
        assert "aaaa1111" in message and "aaaa2222" in message
        # A longer, unique prefix resolves.
        assert find_journal(tmp_path, "aaaa1").sweep_id == "aaaa1111"

    def test_unreadable_directory_is_empty(self, tmp_path):
        assert list_journals(tmp_path / "absent") == []
        assert journal_status_rows(tmp_path / "absent") == []
