"""Property-based tests (hypothesis) for cache keys.

The contract: equal specs hash equal; any single-field perturbation
changes the key; keys do not depend on dict ordering, process
identity, or ``PYTHONHASHSEED``; and the code-version salt feeds the
key (so editing the simulator invalidates the cache).
"""

from __future__ import annotations

import dataclasses
import subprocess
import sys
from pathlib import Path

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.exec import RunSpec, experiment_spec, spec_digest  # noqa: E402
from repro.exec.hashing import CODE_SALT_ENV, canonical_json  # noqa: E402
from repro.media.tape_layout import TapeOrder  # noqa: E402
from repro.simulation.config import ScaledConfig  # noqa: E402

#: Single-field perturbations of the base config, each yielding a
#: valid configuration (base: ScaledConfig(50) — D=20, M=5).
PERTURBATIONS = [
    ("num_disks", 40),
    ("num_objects", 41),
    ("num_subobjects", 61),
    ("num_stations", 17),
    ("access_mean", 0.3),
    ("access_mean", None),
    ("seed", 43),
    ("technique", "staggered"),
    ("stride", 1),
    ("warmup_intervals", 121),
    ("measure_intervals", 601),
    ("think_intervals", 1),
    ("preload", False),
    ("fill_factor", 0.9),
    ("replacement", "lru"),
    ("queue_discipline", "sjf"),
    ("replication_threshold", 2),
    ("replication_source", "tertiary"),
    ("tape_order", TapeOrder.SEQUENTIAL),
    ("fragment_cylinders", 2),
    ("tertiary_bandwidth", 41.0),
    ("tertiary_reposition", 6.0),
    # Fault tolerance: a cached fault-free run must never be served
    # for a faulty one (see also tests/faults/test_fault_determinism).
    ("mttf", 500.0),
    ("mttr", 50.0),
    ("redundancy", "mirror"),
    ("redundancy", "parity"),
    ("parity_group", 5),
    ("rebuild_rate", 2),
    ("on_fault", "abort"),
    ("fail_at", ((3, 100),)),
    # Open workload (repro.workload.arrivals): a cached closed run
    # must never be served for an open one, and every arrival-shaping
    # knob must fork the key.
    ("arrival_rate", 0.05),
    ("zipf_s", 0.8),
    ("deadline_intervals", 10),
    ("mmpp_rates", (0.02, 0.08)),
    ("mmpp_sojourn", (120.0, 120.0)),
    ("diurnal_period", 900.0),
    ("burst_duration", 5),
    ("burst_factor", 2.0),
    ("burst_hotspot", 0.25),
]

#: Workload overrides safe to combine in any subset.
FREE_OVERRIDES = {
    "num_stations": st.integers(min_value=1, max_value=64),
    "seed": st.integers(min_value=0, max_value=2**31 - 1),
    "access_mean": st.one_of(
        st.none(), st.floats(min_value=0.05, max_value=5.0,
                             allow_nan=False, allow_infinity=False)
    ),
    "warmup_intervals": st.integers(min_value=0, max_value=500),
    "measure_intervals": st.integers(min_value=1, max_value=2000),
    "preload": st.booleans(),
    "replacement": st.sampled_from(["lfu", "lru"]),
}


def base_config():
    return ScaledConfig(scale=50)


overrides_strategy = st.fixed_dictionaries(
    {}, optional=FREE_OVERRIDES
)


class TestEqualSpecsHashEqual:
    @given(overrides=overrides_strategy)
    @settings(max_examples=50, deadline=None)
    def test_identical_configs_identical_keys(self, overrides):
        first = experiment_spec(base_config().with_(**overrides))
        second = experiment_spec(base_config().with_(**overrides))
        assert first.config is not second.config
        assert spec_digest(first) == spec_digest(second)

    def test_label_is_not_part_of_the_key(self):
        config = base_config()
        assert spec_digest(experiment_spec(config, label="a")) == spec_digest(
            experiment_spec(config, label="b")
        )

    @given(
        params=st.dictionaries(
            st.sampled_from(["alpha", "beta", "gamma", "delta"]),
            st.integers(min_value=0, max_value=9),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_params_dict_order_irrelevant(self, params):
        reversed_params = dict(reversed(list(params.items())))
        first = RunSpec(kind="mixed_media", params=params)
        second = RunSpec(kind="mixed_media", params=reversed_params)
        assert spec_digest(first) == spec_digest(second)


class TestPerturbationsChangeKey:
    @given(perturbation=st.sampled_from(PERTURBATIONS))
    @settings(max_examples=len(PERTURBATIONS), deadline=None)
    def test_single_field_perturbation_changes_key(self, perturbation):
        field, value = perturbation
        config = base_config()
        assert getattr(config, field) != value
        perturbed = config.with_(**{field: value})
        assert spec_digest(experiment_spec(config)) != spec_digest(
            experiment_spec(perturbed)
        )

    def test_every_config_field_is_hashed(self):
        """No config field may be invisible to the cache key, except
        the explicitly declared exclusions (fields that cannot change
        a run's payload)."""
        from repro.exec.hashing import canonical
        from repro.exec.spec import DIGEST_EXCLUDED_CONFIG_FIELDS

        hashed = set(canonical(base_config()))
        declared = {f.name for f in dataclasses.fields(base_config())}
        assert hashed == declared
        assert set(DIGEST_EXCLUDED_CONFIG_FIELDS) == {"sanitize"}

    def test_arrival_model_forks_the_key(self):
        """The arrival mode itself cannot be perturbed alone (an open
        mode requires its rate fields), so check the valid
        combinations: closed, poisson, and mmpp specs must all hash
        apart."""
        closed = base_config()
        poisson = closed.with_(arrival="poisson", arrival_rate=0.05)
        mmpp = closed.with_(
            arrival="mmpp",
            mmpp_rates=(0.02, 0.08),
            mmpp_sojourn=(100.0, 100.0),
        )
        digests = {
            spec_digest(experiment_spec(config))
            for config in (closed, poisson, mmpp)
        }
        assert len(digests) == 3

    def test_sanitize_mode_is_excluded_from_the_key(self):
        """Sanitize only adds checks — all three modes must share one
        cache entry (a strict CI pass warms the cache for plain runs)."""
        config = base_config()
        digests = {
            spec_digest(experiment_spec(config.with_(sanitize=mode)))
            for mode in ("off", "check", "strict")
        }
        assert len(digests) == 1

    def test_kind_is_part_of_the_key(self):
        params = {"value": 1}
        assert spec_digest(RunSpec(kind="mixed_media", params=params)) != (
            spec_digest(RunSpec(kind="fairness", params=params))
        )

    @given(
        field=st.sampled_from(sorted(FREE_OVERRIDES)),
        perturbation=st.sampled_from(PERTURBATIONS),
    )
    @settings(max_examples=40, deadline=None)
    def test_perturbations_compose(self, field, perturbation):
        """Perturbing a second field never collides back."""
        pfield, pvalue = perturbation
        if pfield == field:
            return
        config = base_config()
        perturbed = config.with_(**{pfield: pvalue})
        assert spec_digest(experiment_spec(config)) != spec_digest(
            experiment_spec(perturbed)
        )


class TestStability:
    def test_code_salt_changes_key(self, monkeypatch):
        config = base_config()
        before = spec_digest(experiment_spec(config))
        monkeypatch.setenv(CODE_SALT_ENV, "pretend-the-code-changed")
        after = spec_digest(experiment_spec(config))
        assert before != after

    def test_stable_across_process_restarts(self, monkeypatch):
        """A fresh interpreter — under a different PYTHONHASHSEED —
        computes the same digest for the same spec."""
        monkeypatch.setenv(CODE_SALT_ENV, "fixed-salt-for-restart-test")
        here = spec_digest(experiment_spec(base_config()))
        src = str(Path(__file__).resolve().parents[2] / "src")
        program = (
            "from repro.exec import experiment_spec, spec_digest\n"
            "from repro.simulation.config import ScaledConfig\n"
            "print(spec_digest(experiment_spec(ScaledConfig(scale=50))))\n"
        )
        for hashseed in ("0", "424242"):
            out = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True, text=True, check=True,
                env={
                    "PYTHONPATH": src,
                    "PYTHONHASHSEED": hashseed,
                    CODE_SALT_ENV: "fixed-salt-for-restart-test",
                    "PATH": "/usr/bin:/bin",
                },
            )
            assert out.stdout.strip() == here

    @given(overrides=overrides_strategy)
    @settings(max_examples=25, deadline=None)
    def test_canonical_json_round_trips_via_json(self, overrides):
        """The canonical form is genuine JSON (cache files stay
        readable) and re-canonicalising is a fixed point."""
        import json

        spec = experiment_spec(base_config().with_(**overrides))
        from repro.exec.hashing import canonical

        document = canonical(spec.config)
        assert json.loads(canonical_json(document)) == document
