"""Resume semantics: interrupted sweeps finish byte-identically.

The contract (docs/resilient_execution.md): interrupt a sweep after N
rows, resume it, and the final rows are **byte-identical** to an
uninterrupted sweep — at ``jobs=1`` and ``jobs=4``, with or without
the result cache (the journal carries payloads itself).
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import threading
import time

import pytest

from repro.errors import SweepInterrupted
from repro.exec import (
    ResultCache,
    RunSpec,
    Supervision,
    execute,
    journal_root,
    list_journals,
)
from repro.exec.hashing import canonical_json
from repro.exec.spec import register_kind


@register_kind("_paced")
def _paced_kind(spec, obs=None):
    """A deterministic payload with a controllable duration."""
    time.sleep(float(spec.params.get("seconds", 0.0)))
    value = spec.params["value"]
    return {"value": value, "square": value * value}


def paced_specs(count, seconds=0.0):
    return [
        RunSpec(
            kind="_paced",
            params={"value": n, "seconds": seconds},
            label=f"paced-{n}",
        )
        for n in range(count)
    ]


def rows_of(records):
    """The byte form a caller would export: canonical payload JSON."""
    return [canonical_json(record.payload) for record in records]


def quiet_supervision(**overrides):
    options = {"handle_signals": False, "max_attempts": 1}
    options.update(overrides)
    return Supervision(**options)


def interrupt_after(delay):
    """Deliver SIGINT to this process after ``delay`` seconds."""
    pid = os.getpid()
    timer = threading.Timer(delay, lambda: os.kill(pid, signal.SIGINT))
    timer.start()
    return timer


class TestJournalResume:
    """Crash-style resume: the first invocation stops early, the second
    invocation picks the journal up."""

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_crash_after_two_rows_resumes_byte_identical(self, tmp_path, jobs):
        """Simulate a hard crash (kill -9 of the parent): the journal
        holds two finished rows and a torn tail.  Re-running the sweep
        replays those two and executes only the rest."""
        specs = paced_specs(6)
        ref_dir = tmp_path / "ref"
        reference = execute(
            specs, jobs=jobs, supervision=quiet_supervision(journal_dir=ref_dir)
        )
        journal_dir = tmp_path / "journal"
        shutil.copytree(ref_dir, journal_dir)
        path = next(
            path for path in journal_dir.glob("*.jsonl")
            if not path.name.endswith(".events.jsonl")
        )
        lines = path.read_text().splitlines(keepends=True)
        kept = [
            line for line in lines
            if json.loads(line).get("event") != "end"
        ][:3]  # begin + two rows
        path.write_text("".join(kept) + '{"event": "run", "digest": "torn')
        resumed = execute(
            specs, jobs=jobs,
            supervision=quiet_supervision(journal_dir=journal_dir),
        )
        assert rows_of(resumed) == rows_of(reference)
        assert sum(1 for record in resumed if record.resumed) == 2

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_interrupted_journal_resumes_without_cache(self, tmp_path, jobs):
        """The journal alone (no result cache) is enough to resume."""
        specs = paced_specs(5)
        journal_dir = tmp_path / "journals"
        supervision = quiet_supervision(journal_dir=journal_dir)
        reference = execute(specs, jobs=jobs, supervision=supervision)
        resumed = execute(specs, jobs=jobs, supervision=supervision)
        assert all(record.resumed for record in resumed)
        assert rows_of(resumed) == rows_of(reference)


class TestSignalInterrupt:
    """Real-signal resume: SIGINT mid-sweep raises SweepInterrupted,
    flushed rows survive, and a re-run completes byte-identically."""

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_sigint_interrupt_then_resume_byte_identical(self, tmp_path, jobs):
        specs = paced_specs(6, seconds=0.25)
        reference = execute(
            specs, jobs=jobs,
            supervision=quiet_supervision(journal_dir=tmp_path / "ref"),
        )
        journal_dir = tmp_path / "journals"
        supervision = Supervision(
            handle_signals=True, max_attempts=1, journal_dir=journal_dir,
            argv=["sweep", "--paced"],
        )
        # Fire before the first 0.25 s wave finishes: the drain then
        # completes only the in-flight rows and leaves the rest pending
        # at jobs=1 (1 in flight) and jobs=4 (≤4 in flight) alike.
        timer = interrupt_after(0.15)
        try:
            with pytest.raises(SweepInterrupted) as caught:
                execute(specs, jobs=jobs, supervision=supervision)
        finally:
            timer.cancel()
        interrupt = caught.value
        assert interrupt.signal_name == "SIGINT"
        assert interrupt.sweep_id
        assert interrupt.resume_command.startswith("repro sweep-resume")
        assert 0 < interrupt.completed < len(specs)
        # The journal recorded the drain.
        states = list_journals(journal_dir)
        assert len(states) == 1
        state = states[0]
        assert state.status == "interrupted"
        assert state.completed == interrupt.completed
        assert state.argv == ["sweep", "--paced"]
        # Resume: settled rows replay from the journal, the rest run.
        resumed = execute(
            specs, jobs=jobs,
            supervision=quiet_supervision(journal_dir=journal_dir),
        )
        assert rows_of(resumed) == rows_of(reference)
        assert sum(1 for r in resumed if r.resumed) == interrupt.completed
        assert list_journals(journal_dir)[0].status == "complete"

    def test_interrupt_with_cache_names_journal_beside_it(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = paced_specs(6, seconds=0.25)
        timer = interrupt_after(0.15)
        try:
            with pytest.raises(SweepInterrupted) as caught:
                execute(
                    specs, jobs=2, cache=cache,
                    supervision=Supervision(max_attempts=1),
                )
        finally:
            timer.cancel()
        assert str(journal_root(cache.root)) in caught.value.journal_path
