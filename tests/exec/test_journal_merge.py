"""Journal merge under concurrent settlers.

The cluster master and a local executor can flush into the same
journal file (same cache root, same sweep id) at the same time — as
can multiple HTTP handler threads pushing agent results.  The append
path is a single ``os.write`` on an ``O_APPEND`` descriptor, so rows
from concurrent writers must never tear or interleave, and replaying
the journal must dedup by digest with the last record winning.
"""

from __future__ import annotations

import json
import multiprocessing
import threading

from repro.exec.journal import SweepJournal, load_journal


def _payload(writer: int, row: int):
    # Big enough to span several pipe/page buffers if appends were
    # buffered per-character rather than atomic per-line.
    return {"writer": writer, "row": row, "filler": "x" * 4096}


def _settle_rows(root, sweep_id, writer, count):
    journal = SweepJournal(root, sweep_id)
    for row in range(count):
        journal.record_run(
            f"digest-{writer}-{row}",
            kind="test",
            label=f"w{writer}-r{row}",
            status="ok",
            payload=_payload(writer, row),
        )


class TestConcurrentSettlers:
    def test_threaded_writers_no_torn_or_lost_rows(self, tmp_path):
        writers, rows = 8, 25
        lead = SweepJournal(tmp_path, "threads")
        lead.begin(["t"], [f"digest-{w}-{r}" for w in range(writers) for r in range(rows)])
        threads = [
            threading.Thread(
                target=_settle_rows, args=(tmp_path, "threads", w, rows)
            )
            for w in range(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Every line parses (no torn rows) and every row arrived once.
        lines = lead.path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        runs = [r for r in records if r["event"] == "run"]
        assert len(runs) == writers * rows
        digests = [r["digest"] for r in runs]
        assert len(set(digests)) == writers * rows  # no duplicates
        for record in runs:
            w, r = record["payload"]["writer"], record["payload"]["row"]
            assert record["digest"] == f"digest-{w}-{r}"
            assert record["payload"]["filler"] == "x" * 4096

        state = load_journal(lead.path)
        assert state is not None
        assert len(state.runs) == writers * rows
        assert state.completed == writers * rows

    def test_process_writers_no_torn_or_lost_rows(self, tmp_path):
        writers, rows = 4, 15
        lead = SweepJournal(tmp_path, "procs")
        lead.begin(["t"], [f"digest-{w}-{r}" for w in range(writers) for r in range(rows)])
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        processes = [
            context.Process(
                target=_settle_rows, args=(tmp_path, "procs", w, rows)
            )
            for w in range(writers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0

        records = [
            json.loads(line)
            for line in lead.path.read_text().splitlines()
        ]
        runs = [r for r in records if r["event"] == "run"]
        assert len(runs) == writers * rows
        assert len({r["digest"] for r in runs}) == writers * rows
        state = load_journal(lead.path)
        assert state.completed == writers * rows

    def test_replay_dedups_by_digest_last_record_wins(self, tmp_path):
        journal = SweepJournal(tmp_path, "dedup")
        journal.begin(["t"], ["d1"])
        journal.record_run(
            "d1", kind="test", label="first", status="error",
            payload={}, error="transient", attempts=1,
        )
        journal.record_run(
            "d1", kind="test", label="second", status="ok",
            payload={"answer": 42}, attempts=2,
        )
        state = load_journal(journal.path)
        assert len(state.runs) == 1
        row = state.runs["d1"]
        assert row["status"] == "ok" and row["attempts"] == 2
        assert state.settled_runs()["d1"]["payload"] == {"answer": 42}
