"""The executor's hard contract: execution strategy never changes rows.

``--jobs 1``, ``--jobs 4``, and a warm-cache pass over the same sweep
must produce **byte-identical** serialized result rows, and per-run
RNG streams must be independent of submission/scheduling order.  The
CI matrix exercises this file under both executor paths; set
``REPRO_EXEC_JOBS`` to change the parallel width (default 4).
"""

from __future__ import annotations

import json
import os
import random

from repro.exec import (
    ResultCache,
    canonical_json,
    execute,
    experiment_spec,
    derive_seed,
    spec_digest,
)
from repro.sim.rng import RandomStream
from repro.simulation.config import ScaledConfig

PARALLEL_JOBS = int(os.environ.get("REPRO_EXEC_JOBS", "4"))


def sweep_specs():
    """A small but heterogeneous grid: both techniques, three loads."""
    base = ScaledConfig(scale=50).with_(access_mean=0.2)
    return [
        experiment_spec(base.with_(technique=technique, num_stations=n))
        for technique in ("simple", "vdr")
        for n in (1, 2, 5)
    ]


def rows_bytes(records) -> str:
    """The canonical serialized result rows of a sweep."""
    assert all(record.ok for record in records)
    return canonical_json([record.payload for record in records])


class TestByteIdenticalExecutions:
    def test_serial_parallel_and_cache_identical(self, tmp_path):
        specs = sweep_specs()
        serial = rows_bytes(execute(specs, jobs=1))
        parallel = rows_bytes(execute(specs, jobs=PARALLEL_JOBS))
        assert parallel == serial

        cache = ResultCache(tmp_path / "cache")
        cold = rows_bytes(execute(specs, jobs=PARALLEL_JOBS, cache=cache))
        warm_records = execute(specs, jobs=PARALLEL_JOBS, cache=cache)
        assert cold == serial
        assert rows_bytes(warm_records) == serial
        # The warm pass did no simulation work at all.
        assert all(record.cached for record in warm_records)

    def test_summaries_identical_across_strategies(self, tmp_path):
        """The user-facing rows (summaries), not just raw payloads —
        compared WITHOUT key sorting, so a cache round-trip that
        reorders dict keys (what `--output` would export) fails too."""
        specs = sweep_specs()
        serial = [r.result().summary() for r in execute(specs, jobs=1)]
        cache = ResultCache(tmp_path / "cache")
        execute(specs, jobs=PARALLEL_JOBS, cache=cache)
        warm = [r.result().summary()
                for r in execute(specs, jobs=1, cache=cache)]
        assert json.dumps(serial) == json.dumps(warm)


class TestSchedulingOrderIndependence:
    def test_submission_order_does_not_change_payloads(self):
        """Each run's RNG is derived from its own config, not from any
        shared stream, so shuffling the submission order must leave
        every (digest → payload) pair untouched."""
        specs = sweep_specs()
        shuffled = specs[:]
        random.Random(7).shuffle(shuffled)
        assert [spec_digest(s) for s in shuffled] != [
            spec_digest(s) for s in specs
        ]

        straight = {
            record.digest: record.payload
            for record in execute(specs, jobs=PARALLEL_JOBS)
        }
        reordered = {
            record.digest: record.payload
            for record in execute(shuffled, jobs=PARALLEL_JOBS)
        }
        assert canonical_json(straight) == canonical_json(reordered)

    def test_interleaving_with_other_runs_does_not_perturb(self):
        """A run's payload is the same whether it runs alone or amid a
        sweep (no hidden global RNG coupling between runs)."""
        specs = sweep_specs()
        alone = execute([specs[3]], jobs=1)[0].payload
        amid = execute(specs, jobs=1)[3].payload
        assert canonical_json(alone) == canonical_json(amid)


class TestDerivedSeeds:
    def test_matches_random_stream_fork(self):
        base = 42
        assert derive_seed(base, 0) == RandomStream(base).fork(1).seed
        assert derive_seed(base, 9) == RandomStream(base).fork(10).seed

    def test_distinct_indices_distinct_streams(self):
        seeds = {derive_seed(42, index) for index in range(1000)}
        assert len(seeds) == 1000

    def test_deterministic_in_inputs(self):
        assert derive_seed(7, 3) == derive_seed(7, 3)
        assert derive_seed(7, 3) != derive_seed(8, 3)

    def test_derived_seed_runs_are_reproducible(self):
        """Two sweeps whose runs use derived seeds agree run-for-run."""
        base = ScaledConfig(scale=50).with_(access_mean=0.2, num_stations=2)
        specs = [
            experiment_spec(base.with_(seed=derive_seed(base.seed, index)))
            for index in range(3)
        ]
        first = rows_bytes(execute(specs, jobs=1))
        second = rows_bytes(execute(specs, jobs=PARALLEL_JOBS))
        assert first == second
