"""Tests for random variates, including the paper's truncated geometric."""

from __future__ import annotations

import math

import pytest

from repro.sim.rng import (
    DiscreteSampler,
    RandomStream,
    effective_working_set,
    geometric_success_probability,
    substream_salt,
    truncated_geometric_pmf,
)


def test_same_seed_same_sequence():
    a = RandomStream(seed=7)
    b = RandomStream(seed=7)
    assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]


def test_fork_is_deterministic_and_distinct():
    base = RandomStream(seed=7)
    fork1 = base.fork(1)
    fork1_again = RandomStream(seed=7).fork(1)
    fork2 = base.fork(2)
    assert fork1.uniform() == fork1_again.uniform()
    assert fork1.seed != fork2.seed


def test_substream_salt_is_stable_and_name_sensitive():
    assert substream_salt("faults") == substream_salt("faults")
    assert substream_salt("faults") != substream_salt("workload")
    assert 0 <= substream_salt("faults") < 2**63


def test_substream_same_name_same_draws():
    a = RandomStream(seed=7).substream("faults")
    b = RandomStream(seed=7).substream("faults")
    assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]


def test_substream_distinct_names_distinct_draws():
    base = RandomStream(seed=7)
    assert base.substream("faults").uniform() != base.substream("x").uniform()


def test_substream_independent_of_parent_and_sibling_use():
    """Drawing from the parent or one substream never perturbs
    another substream: each is a pure function of (seed, name)."""
    fresh = RandomStream(seed=7).substream("faults")
    expected = [fresh.uniform() for _ in range(5)]

    parent = RandomStream(seed=7)
    parent.uniform()  # parent consumption
    sibling = parent.substream("other")
    for _ in range(100):  # sibling consumption
        sibling.uniform()
    late = parent.substream("faults")
    assert [late.uniform() for _ in range(5)] == expected


def test_substream_disjoint_from_small_forks():
    """Named substreams cannot collide with the indexed forks the
    workload and executor already hand out."""
    base = RandomStream(seed=7)
    fork_seeds = {base.fork(i).seed for i in range(1000)}
    for name in ("faults", "disk-0", "disk-1", "disk-99"):
        assert base.substream(name).seed not in fork_seeds


def test_exponential_mean(stream):
    samples = [stream.exponential(10.0) for _ in range(20000)]
    assert sum(samples) / len(samples) == pytest.approx(10.0, rel=0.05)


def test_exponential_validates_mean(stream):
    with pytest.raises(ValueError):
        stream.exponential(0.0)


def test_geometric_success_probability():
    assert geometric_success_probability(10.0) == pytest.approx(1.0 / 11.0)
    with pytest.raises(ValueError):
        geometric_success_probability(0.0)


def test_truncated_geometric_pmf_sums_to_one():
    pmf = truncated_geometric_pmf(10.0, 2000)
    assert sum(pmf) == pytest.approx(1.0)
    # Monotone decreasing: object 0 is the hottest.
    assert all(pmf[i] >= pmf[i + 1] for i in range(len(pmf) - 1))


def test_truncated_geometric_pmf_ratio_is_constant():
    pmf = truncated_geometric_pmf(10.0, 100)
    ratio = pmf[1] / pmf[0]
    for i in range(1, 20):
        assert pmf[i + 1] / pmf[i] == pytest.approx(ratio)
    assert ratio == pytest.approx(10.0 / 11.0)


def test_truncated_geometric_samples_within_limit(stream):
    for _ in range(2000):
        value = stream.truncated_geometric(10.0, 50)
        assert 0 <= value < 50


def test_truncated_geometric_matches_pmf(stream):
    limit = 30
    counts = [0] * limit
    n = 50000
    for _ in range(n):
        counts[stream.truncated_geometric(5.0, limit)] += 1
    pmf = truncated_geometric_pmf(5.0, limit)
    for i in (0, 1, 2, 5):
        assert counts[i] / n == pytest.approx(pmf[i], rel=0.1)


def test_effective_working_set_tracks_paper_scale():
    """Means 10/20/43.5 concentrate increasing working sets."""
    ws10 = effective_working_set(10.0, 2000)
    ws20 = effective_working_set(20.0, 2000)
    ws43 = effective_working_set(43.5, 2000)
    assert ws10 < ws20 < ws43
    # Roughly the 100/200/400 ladder (within a factor of ~2 for the
    # 99% mass convention).
    assert 30 <= ws10 <= 120
    assert 60 <= ws20 <= 240
    assert 120 <= ws43 <= 480


def test_effective_working_set_validates_mass():
    with pytest.raises(ValueError):
        effective_working_set(10.0, 100, mass=1.5)


def test_discrete_sampler_respects_pmf(stream):
    sampler = DiscreteSampler([0.7, 0.2, 0.1], stream)
    counts = [0, 0, 0]
    n = 30000
    for _ in range(n):
        counts[sampler.sample()] += 1
    assert counts[0] / n == pytest.approx(0.7, abs=0.02)
    assert counts[1] / n == pytest.approx(0.2, abs=0.02)


def test_discrete_sampler_normalises(stream):
    sampler = DiscreteSampler([2.0, 2.0], stream)
    assert sampler.pmf == pytest.approx([0.5, 0.5])


def test_discrete_sampler_rejects_bad_pmf(stream):
    with pytest.raises(ValueError):
        DiscreteSampler([], stream)
    with pytest.raises(ValueError):
        DiscreteSampler([0.5, -0.5, 1.0], stream)


def test_shuffle_and_choice_deterministic():
    a = RandomStream(seed=3)
    b = RandomStream(seed=3)
    items_a = list(range(10))
    items_b = list(range(10))
    a.shuffle(items_a)
    b.shuffle(items_b)
    assert items_a == items_b
    assert a.choice([1, 2, 3]) == b.choice([1, 2, 3])
