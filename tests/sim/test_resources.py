"""Tests for Facility and Store resources."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import hold
from repro.sim.resources import Facility, Store, facility_set


def test_facility_grants_up_to_capacity_without_queueing(sim):
    facility = Facility(sim, "servers", capacity=2)
    grants = []

    def customer(name):
        yield facility.request()
        grants.append((sim.now, name))
        yield hold(5.0)
        facility.release()

    sim.spawn(customer("a"))
    sim.spawn(customer("b"))
    sim.run()
    assert [t for t, _ in grants] == [0.0, 0.0]


def test_facility_queues_fifo_beyond_capacity(sim):
    facility = Facility(sim, capacity=1)
    grants = []

    def customer(name, service):
        yield facility.request()
        grants.append((sim.now, name))
        yield hold(service)
        facility.release()

    sim.spawn(customer("a", 2.0))
    sim.spawn(customer("b", 1.0))
    sim.spawn(customer("c", 1.0))
    sim.run()
    assert grants == [(0.0, "a"), (2.0, "b"), (3.0, "c")]


def test_facility_release_when_idle_raises(sim):
    facility = Facility(sim)
    with pytest.raises(SimulationError):
        facility.release()


def test_facility_try_acquire_is_nonblocking(sim):
    facility = Facility(sim, capacity=1)
    assert facility.try_acquire()
    assert not facility.try_acquire()
    facility.release()
    assert facility.try_acquire()


def test_facility_tracks_queueing_delay(sim):
    facility = Facility(sim, capacity=1)

    def customer(service):
        yield facility.request()
        yield hold(service)
        facility.release()

    sim.spawn(customer(4.0))
    sim.spawn(customer(1.0))
    sim.run()
    assert facility.delay.count == 2
    assert facility.delay.maximum == 4.0
    assert facility.delay.minimum == 0.0


def test_facility_capacity_validation(sim):
    with pytest.raises(SimulationError):
        Facility(sim, capacity=0)


def test_facility_set_builds_named_singles(sim):
    facilities = facility_set(sim, "disk", 3)
    assert len(facilities) == 3
    assert facilities[2].name == "disk[2]"
    assert all(f.capacity == 1 for f in facilities)


def test_store_put_then_get(sim):
    store = Store(sim)
    received = []

    def producer():
        yield store.put("item-1")
        yield hold(1.0)
        yield store.put("item-2")

    def consumer():
        for _ in range(2):
            item = yield store.get()
            received.append((sim.now, item))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert received == [(0.0, "item-1"), (1.0, "item-2")]


def test_store_get_blocks_until_put(sim):
    store = Store(sim)
    received = []

    def consumer():
        item = yield store.get()
        received.append((sim.now, item))

    def producer():
        yield hold(3.0)
        yield store.put("late")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert received == [(3.0, "late")]


def test_bounded_store_blocks_putter_when_full(sim):
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("put a", sim.now))
        yield store.put("b")
        log.append(("put b", sim.now))

    def consumer():
        yield hold(2.0)
        item = yield store.get()
        log.append((f"got {item}", sim.now))

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert ("put a", 0.0) in log
    assert ("put b", 2.0) in log  # unblocked by the get


def test_store_try_put_and_try_get(sim):
    store = Store(sim, capacity=2)
    assert store.try_put(1)
    assert store.try_put(2)
    assert not store.try_put(3)
    assert store.try_get() == 1
    assert store.try_get() == 2
    assert store.try_get() is None


def test_store_len_tracks_items(sim):
    store = Store(sim)
    assert len(store) == 0
    store.try_put("x")
    assert len(store) == 1
    store.try_get()
    assert len(store) == 0


def test_store_capacity_validation(sim):
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)
