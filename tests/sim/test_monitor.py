"""Tests for statistics collectors."""

from __future__ import annotations

import math

import pytest

from repro.sim.monitor import Histogram, Tally, TimeWeighted


def test_tally_mean_and_extremes():
    tally = Tally()
    for value in (1.0, 2.0, 3.0, 4.0):
        tally.record(value)
    assert tally.count == 4
    assert tally.mean == pytest.approx(2.5)
    assert tally.minimum == 1.0
    assert tally.maximum == 4.0
    assert tally.total == pytest.approx(10.0)


def test_tally_variance_matches_textbook():
    tally = Tally()
    values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
    for value in values:
        tally.record(value)
    mean = sum(values) / len(values)
    expected = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    assert tally.variance == pytest.approx(expected)
    assert tally.stddev == pytest.approx(math.sqrt(expected))


def test_tally_empty_is_safe():
    tally = Tally()
    assert tally.mean == 0.0
    assert tally.variance == 0.0


def test_tally_reset():
    tally = Tally()
    tally.record(5.0)
    tally.reset()
    assert tally.count == 0
    assert tally.mean == 0.0


def test_timeweighted_mean_weights_by_duration(sim):
    signal = TimeWeighted(sim, initial=0.0)
    sim.schedule(2.0, lambda _: signal.record(10.0))
    sim.schedule(6.0, lambda _: signal.record(0.0))
    sim.schedule(10.0, lambda _: None)
    sim.run()
    # 0 for 2s, 10 for 4s, 0 for 4s over 10s -> mean 4.0
    assert signal.mean == pytest.approx(4.0)
    assert signal.maximum == 10.0


def test_timeweighted_tracks_current_level(sim):
    signal = TimeWeighted(sim, initial=3.0)
    assert signal.level == 3.0
    signal.record(7.0)
    assert signal.level == 7.0


def test_timeweighted_reset_restarts_window(sim):
    signal = TimeWeighted(sim, initial=5.0)
    sim.schedule(4.0, lambda _: signal.reset())
    sim.schedule(8.0, lambda _: None)
    sim.run()
    assert signal.mean == pytest.approx(5.0)
    assert signal.elapsed == pytest.approx(4.0)


def test_histogram_bins_and_quantiles():
    histogram = Histogram(low=0.0, high=10.0, bins=10)
    for value in range(10):
        histogram.record(value + 0.5)
    assert histogram.count == 10
    assert histogram.underflow == 0
    assert histogram.overflow == 0
    assert histogram.counts == [1] * 10
    assert histogram.quantile(0.5) == pytest.approx(4.5)


def test_histogram_under_and_overflow():
    histogram = Histogram(low=0.0, high=1.0, bins=2)
    histogram.record(-1.0)
    histogram.record(2.0)
    assert histogram.underflow == 1
    assert histogram.overflow == 1


def test_histogram_quantile_empty_returns_none():
    histogram = Histogram(low=0.0, high=1.0)
    assert histogram.quantile(0.5) is None


def test_histogram_validation():
    with pytest.raises(ValueError):
        Histogram(low=0.0, high=0.0)
    with pytest.raises(ValueError):
        Histogram(low=0.0, high=1.0, bins=0)
    histogram = Histogram(low=0.0, high=1.0)
    with pytest.raises(ValueError):
        histogram.quantile(1.5)
