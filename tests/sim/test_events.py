"""Tests for SimEvent combinators."""

from __future__ import annotations

from repro.sim.events import all_of, any_of
from repro.sim.kernel import hold, wait


def test_fire_wakes_all_waiters(sim):
    event = sim.event()
    woken = []

    def waiter(name):
        value = yield wait(event)
        woken.append((name, value))

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    event.fire_in(1.0, "x")
    sim.run()
    assert sorted(woken) == [("a", "x"), ("b", "x")]


def test_clear_rearms_event(sim):
    event = sim.event()
    event.fire("first")
    assert event.is_set
    event.clear()
    assert not event.is_set
    assert event.value is None


def test_on_fire_callback_runs_once(sim):
    event = sim.event()
    calls = []
    event.on_fire(lambda e: calls.append(e.value))
    event.fire("v")
    assert calls == ["v"]
    # Re-fire after clear: the one-shot callback is consumed.
    event.clear()
    event.fire("w")
    assert calls == ["v"]


def test_on_fire_on_set_event_runs_immediately(sim):
    event = sim.event()
    event.fire("already")
    calls = []
    event.on_fire(lambda e: calls.append(e.value))
    assert calls == ["already"]


def test_all_of_fires_after_every_member(sim):
    events = [sim.event(str(i)) for i in range(3)]
    combined = all_of(sim, events)
    log = []

    def waiter():
        values = yield wait(combined)
        log.append((sim.now, values))

    sim.spawn(waiter())
    events[1].fire_in(1.0, "b")
    events[0].fire_in(2.0, "a")
    events[2].fire_in(3.0, "c")
    sim.run()
    assert log == [(3.0, ["a", "b", "c"])]


def test_all_of_empty_list_fires_immediately(sim):
    combined = all_of(sim, [])
    assert combined.is_set
    assert combined.value == []


def test_any_of_fires_on_first_member(sim):
    events = [sim.event(str(i)) for i in range(3)]
    combined = any_of(sim, events)
    log = []

    def waiter():
        winner = yield wait(combined)
        log.append((sim.now, winner.name))

    sim.spawn(waiter())
    events[2].fire_in(1.0)
    events[0].fire_in(2.0)
    sim.run()
    assert log == [(1.0, "2")]


def test_event_repr_shows_state(sim):
    event = sim.event("probe")
    assert "clear" in repr(event)
    event.fire()
    assert "set" in repr(event)
