"""Runtime invariant sanitizer (``repro.sim.sanitize``).

Two contracts matter most:

* sanitizing must never change results — ``strict`` and ``off`` runs
  are byte-identical for every storage technique (the sanitizer only
  *reads* state); and
* the golden configurations are invariant-clean — ``strict`` raises
  nothing and ``check`` tallies zero violations.

Everything else here pins the plumbing: mode parsing, strict/check
dispatch, monotonic clocks, RNG substream reuse detection, the
module-global activation used by the RNG hook, and the environment
override CI uses to harden entire suites.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SanitizeError
from repro.exec.hashing import canonical_json
from repro.sim import sanitize
from repro.sim.sanitize import Sanitizer, activation, build_sanitizer, parse_mode
from repro.simulation.config import ScaledConfig
from repro.simulation.runner import effective_sanitize_mode, run_experiment


class TestModeParsing:
    def test_valid_modes_normalise(self):
        assert parse_mode("off") == "off"
        assert parse_mode("CHECK") == "check"
        assert parse_mode("Strict") == "strict"
        assert parse_mode(None) == "off"
        assert parse_mode("") == "off"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_mode("paranoid")

    def test_build_sanitizer_returns_none_for_off(self):
        assert build_sanitizer("off") is None
        assert build_sanitizer(None) is None
        assert build_sanitizer("check").mode == "check"
        assert build_sanitizer("strict").strict

    def test_sanitizer_cannot_be_built_off(self):
        with pytest.raises(ConfigurationError):
            Sanitizer("off")

    def test_config_field_validated(self):
        with pytest.raises(ConfigurationError):
            ScaledConfig(scale=50, sanitize="bogus")


class TestVerdicts:
    def test_check_mode_tallies_and_continues(self):
        sanitizer = Sanitizer("check")
        sanitizer.violation("half_slots", "claims exceed capacity")
        sanitizer.violation("half_slots", "again")
        sanitizer.expect(False, "buffer", "gauge negative")
        sanitizer.expect(True, "buffer", "never recorded")
        assert sanitizer.summary() == {"half_slots": 2, "buffer": 1}
        assert sanitizer.total == 3

    def test_strict_mode_raises_with_check_name(self):
        sanitizer = Sanitizer("strict")
        with pytest.raises(SanitizeError, match=r"\[sanitize\.half_slots\]"):
            sanitizer.violation("half_slots", "claims exceed capacity")

    def test_check_mode_mirrors_obs_counters(self):
        from repro.obs import Observability

        session = Observability(level="metrics")
        run = session.begin_run("sanitize-test")
        sanitizer = Sanitizer("check", obs=run)
        sanitizer.violation("event_time", "clock ran backwards")
        counter = run.registry.counter("sanitize.event_time")
        assert counter.value == 1

    def test_note_time_flags_backwards_clocks(self):
        sanitizer = Sanitizer("check")
        sanitizer.note_time("kernel", 1.0)
        sanitizer.note_time("kernel", 2.0)
        sanitizer.note_time("kernel", 1.5)
        assert sanitizer.summary() == {"event_time": 1}
        # Independent clocks do not interfere.
        sanitizer.note_time("engine.interval", 0.0)
        assert sanitizer.total == 1

    def test_note_stream_seed_flags_reuse(self):
        sanitizer = Sanitizer("check")
        sanitizer.note_stream_seed(7)
        sanitizer.note_stream_seed(8)
        assert sanitizer.total == 0
        sanitizer.note_stream_seed(7)
        assert sanitizer.summary() == {"rng_substream_reuse": 1}


class TestActivation:
    def test_activation_installs_and_restores(self):
        outer = Sanitizer("check")
        inner = Sanitizer("check")
        assert sanitize.current_sanitizer() is None
        with activation(outer):
            assert sanitize.current_sanitizer() is outer
            with activation(inner):
                assert sanitize.current_sanitizer() is inner
            assert sanitize.current_sanitizer() is outer
        assert sanitize.current_sanitizer() is None

    def test_module_hook_routes_to_active_sanitizer(self):
        sanitizer = Sanitizer("check")
        sanitize.note_stream_seed(3)  # no-op: nothing active
        with activation(sanitizer):
            sanitize.note_stream_seed(3)
            sanitize.note_stream_seed(3)
        assert sanitizer.summary() == {"rng_substream_reuse": 1}


class TestEnvironmentOverride:
    def test_env_raises_mode_when_config_is_off(self, monkeypatch):
        config = ScaledConfig(scale=50)
        monkeypatch.delenv(sanitize.SANITIZE_ENV, raising=False)
        assert effective_sanitize_mode(config) == "off"
        monkeypatch.setenv(sanitize.SANITIZE_ENV, "strict")
        assert effective_sanitize_mode(config) == "strict"

    def test_config_field_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(sanitize.SANITIZE_ENV, "strict")
        config = ScaledConfig(scale=50, sanitize="check")
        assert effective_sanitize_mode(config) == "check"

    def test_invalid_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(sanitize.SANITIZE_ENV, "bogus")
        with pytest.raises(ConfigurationError):
            effective_sanitize_mode(ScaledConfig(scale=50))


class TestEndToEnd:
    """The load-bearing guarantees, per storage technique."""

    TECHNIQUES = ["simple", "staggered", "vdr"]

    def config(self, technique):
        return ScaledConfig(
            scale=20, technique=technique, num_stations=6, access_mean=1.0
        )

    @pytest.mark.parametrize("technique", TECHNIQUES)
    def test_strict_is_byte_identical_to_off(self, technique):
        config = self.config(technique)
        plain = run_experiment(config)
        hardened = run_experiment(config.with_(sanitize="strict"))
        assert canonical_json(plain.summary()) == canonical_json(
            hardened.summary()
        )

    @pytest.mark.parametrize("technique", TECHNIQUES)
    def test_check_mode_finds_zero_violations(self, technique):
        config = self.config(technique).with_(sanitize="check")
        with activation(None):
            run_experiment(config)
        # strict would have raised; re-run in check and count directly.
        sanitizer = build_sanitizer("check")
        with activation(sanitizer):
            from repro.simulation.runner import build_engine

            engine = build_engine(config, sanitizer=sanitizer)
            engine.run(config.warmup_intervals, config.measure_intervals)
        assert sanitizer.summary() == {}

    @pytest.mark.parametrize("technique", TECHNIQUES)
    def test_strict_covers_faulty_runs_too(self, technique):
        config = ScaledConfig(
            scale=20, technique=technique, num_stations=6,
            access_mean=1.0, sanitize="strict",
            mttf=200.0, mttr=40.0, redundancy="mirror",
        )
        result = run_experiment(config)
        assert result.completed >= 0  # and no SanitizeError escaped
