"""Tests for the simulation kernel: clock, calendar, processes."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.events import Interrupt
from repro.sim.kernel import Simulation, hold, wait


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_schedule_runs_callbacks_in_time_order(sim):
    seen = []
    sim.schedule(2.0, seen.append, "b")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(3.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_callbacks_run_in_schedule_order(sim):
    seen = []
    for label in ("first", "second", "third"):
        sim.schedule(1.0, seen.append, label)
    sim.run()
    assert seen == ["first", "second", "third"]


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda _: None)


def test_hold_rejects_negative():
    with pytest.raises(SimulationError):
        hold(-1.0)


def test_process_holds_advance_time(sim):
    times = []

    def proc():
        times.append(sim.now)
        yield hold(1.5)
        times.append(sim.now)
        yield hold(0.5)
        times.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert times == [0.0, 1.5, 2.0]


def test_process_returns_value_and_fires_done_event(sim):
    def proc():
        yield hold(1.0)
        return 42

    p = sim.spawn(proc())
    sim.run()
    assert not p.alive
    assert p.result == 42
    assert p.done_event.is_set
    assert p.done_event.value == 42


def test_process_can_wait_for_another_process(sim):
    order = []

    def child():
        yield hold(2.0)
        order.append("child done")
        return "payload"

    def parent():
        child_proc = sim.spawn(child(), name="child")
        result = yield child_proc
        order.append(f"parent saw {result}")

    sim.spawn(parent(), name="parent")
    sim.run()
    assert order == ["child done", "parent saw payload"]


def test_wait_on_event_resumes_with_value(sim):
    results = []
    event = sim.event("go")

    def waiter():
        value = yield wait(event)
        results.append((sim.now, value))

    sim.spawn(waiter())
    event.fire_in(3.0, "ready")
    sim.run()
    assert results == [(3.0, "ready")]


def test_yielding_event_directly_is_equivalent_to_wait(sim):
    results = []
    event = sim.event()

    def waiter():
        value = yield event
        results.append(value)

    sim.spawn(waiter())
    event.fire_in(1.0, "direct")
    sim.run()
    assert results == ["direct"]


def test_wait_on_already_set_event_resumes_immediately(sim):
    event = sim.event()
    event.fire("early")
    results = []

    def waiter():
        value = yield wait(event)
        results.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert results == [(0.0, "early")]


def test_run_until_stops_clock_at_bound(sim):
    def proc():
        while True:
            yield hold(1.0)

    p = sim.spawn(proc())
    sim.run(until=5.5)
    assert sim.now == 5.5
    p.kill()
    sim.run(until=6.0)


def test_run_is_not_reentrant(sim):
    def proc():
        with pytest.raises(SimulationError):
            sim.run()
        yield hold(0.0)

    sim.spawn(proc())
    sim.run()


def test_interrupt_is_thrown_into_waiting_process(sim):
    outcomes = []
    event = sim.event()

    def waiter():
        try:
            yield wait(event)
            outcomes.append("completed")
        except Interrupt as exc:
            outcomes.append(("interrupted", exc.cause, sim.now))

    p = sim.spawn(waiter())
    sim.schedule(2.0, lambda _: p.interrupt("timeout"), None)
    sim.run()
    assert outcomes == [("interrupted", "timeout", 2.0)]
    assert event.waiter_count == 0  # waiter was withdrawn


def test_kill_terminates_process_silently(sim):
    progressed = []

    def proc():
        yield hold(1.0)
        progressed.append("step")
        yield hold(10.0)
        progressed.append("never")

    p = sim.spawn(proc())
    sim.schedule(2.0, lambda _: p.kill(), None)
    sim.run()
    assert progressed == ["step"]
    assert not p.alive


def test_spawn_rejects_non_generator(sim):
    with pytest.raises(SimulationError):
        sim.spawn(42)  # type: ignore[arg-type]


def test_unsupported_command_raises(sim):
    def proc():
        yield "nonsense"

    sim.spawn(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_many_processes_interleave_deterministically(sim):
    log = []

    def proc(name, delay):
        for i in range(3):
            yield hold(delay)
            log.append((sim.now, name, i))

    sim.spawn(proc("a", 1.0))
    sim.spawn(proc("b", 1.5))
    sim.run()
    assert log == sorted(log, key=lambda entry: entry[0])
    assert len(log) == 6


def test_peek_reports_next_event_time(sim):
    assert sim.peek() == float("inf")
    sim.schedule(4.0, lambda _: None)
    assert sim.peek() == 4.0


def test_max_events_bounds_execution(sim):
    seen = []
    for i in range(10):
        sim.schedule(float(i), seen.append, i)
    sim.run(max_events=3)
    assert seen == [0, 1, 2]


# ----------------------------------------------------------------------
# Cancellable timers (lazy calendar invalidation)
# ----------------------------------------------------------------------
class TestCancellableTimers:
    def test_cancelled_entry_never_fires(self, sim):
        seen = []
        timer = sim.schedule_cancellable(1.0, seen.append, "dead")
        sim.schedule(2.0, seen.append, "alive")
        timer.cancel()
        sim.run()
        assert seen == ["alive"]
        assert sim.now == 2.0

    def test_cancel_is_idempotent(self, sim):
        timer = sim.schedule_cancellable(1.0, lambda _: None)
        timer.cancel()
        timer.cancel()
        assert timer.cancelled
        sim.run()

    def test_peek_skips_cancelled_front(self, sim):
        timer = sim.schedule_cancellable(1.0, lambda _: None)
        sim.schedule(5.0, lambda _: None)
        timer.cancel()
        assert sim.peek() == 5.0

    def test_step_returns_false_when_only_tombstones_remain(self, sim):
        timer = sim.schedule_cancellable(1.0, lambda _: None)
        timer.cancel()
        assert sim.step() is False
        assert sim.now == 0.0

    def test_mass_cancellation_compacts_the_heap(self, sim):
        seen = []
        timers = [
            sim.schedule_cancellable(float(i + 1), seen.append, i)
            for i in range(300)
        ]
        for timer in timers[:299]:
            timer.cancel()
        # Compaction kicks in once tombstones dominate; the one live
        # entry must survive it.
        assert len(sim._heap) < 300
        sim.run()
        assert seen == [299]

    def test_interrupt_during_hold_cancels_the_stale_resume(self, sim):
        """An interrupted hold must not leave its scheduled resume
        behind: the stale entry would re-advance the generator at the
        original wake time."""
        trace = []

        def proc():
            try:
                yield hold(10.0)
                trace.append(("woke", sim.now))
            except Interrupt:
                trace.append(("interrupted", sim.now))
                yield hold(1.0)
                trace.append(("resumed", sim.now))

        process = sim.spawn(proc())
        sim.schedule(3.0, lambda _: process.interrupt(), None)
        sim.run()
        assert trace == [("interrupted", 3.0), ("resumed", 4.0)]
        assert sim.now == 4.0  # nothing fired at the stale t=10

    def test_interrupted_hold_timer_handle_is_dropped(self, sim):
        def proc():
            try:
                yield hold(10.0)
            except Interrupt:
                pass

        process = sim.spawn(proc())
        sim.schedule(1.0, lambda _: process.interrupt(), None)
        sim.run()
        assert process._hold_timer is None
        assert not process.alive


class TestCohortStepping:
    """``step_cohort`` / batched ``run()`` must execute the calendar in
    exactly the order repeated ``step()`` calls would — the cohort
    drain removes loop overhead, never reorders."""

    def _churn(self, sim, trace):
        """A workload with same-time cohorts, mid-cohort scheduling,
        holds, events, and cancellations."""
        from repro.sim.kernel import Simulation  # noqa: F401 (docs)

        def worker(name, delay):
            yield hold(delay)
            trace.append((name, sim.now))
            yield hold(1.0)
            trace.append((name + "-again", sim.now))

        for i in range(4):
            sim.spawn(worker(f"w{i}", 2.0), name=f"w{i}")
        # Same-instant callbacks, one of which schedules another at the
        # same instant (joins the cohort) and one at a later instant.
        sim.schedule(2.0, lambda _: trace.append(("cb", sim.now)), None)
        sim.schedule(
            2.0,
            lambda _: sim.schedule(
                0.0, lambda __: trace.append(("nested", sim.now)), None
            ),
            None,
        )
        timer = sim.schedule_cancellable(
            2.0, lambda _: trace.append(("cancelled", sim.now)), None
        )
        sim.schedule(0.5, lambda _: timer.cancel(), None)

    def test_batched_run_matches_scalar_run(self):
        traces = []
        for batched in (False, True):
            sim = Simulation(batched=batched)
            trace = []
            self._churn(sim, trace)
            sim.run()
            traces.append((trace, sim.now))
        assert traces[0] == traces[1]
        assert ("cancelled", 2.0) not in traces[0][0]
        assert ("nested", 2.0) in traces[0][0]

    def test_step_cohort_counts_and_advances(self, sim):
        seen = []
        for label in ("a", "b", "c"):
            sim.schedule(1.0, seen.append, label)
        sim.schedule(2.0, seen.append, "late")
        assert sim.step_cohort() == 3
        assert seen == ["a", "b", "c"]
        assert sim.now == 1.0
        assert sim.step_cohort() == 1
        assert sim.now == 2.0
        assert sim.step_cohort() == 0  # empty calendar

    def test_step_cohort_skips_cancelled_entries(self, sim):
        seen = []
        sim.schedule(1.0, seen.append, "keep")
        timer = sim.schedule_cancellable(1.0, seen.append, "dead")
        sim.schedule(1.0, seen.append, "keep2")
        timer.cancel()
        assert sim.step_cohort() == 2
        assert seen == ["keep", "keep2"]

    def test_max_events_disables_cohort_draining(self):
        """A bounded run must honour the per-entry budget even when the
        kernel is batched (a cohort could overshoot it)."""
        sim = Simulation(batched=True)
        seen = []
        for label in ("a", "b", "c"):
            sim.schedule(1.0, seen.append, label)
        sim.run(max_events=2)
        assert seen == ["a", "b"]

    def test_run_until_stops_before_next_cohort(self):
        sim = Simulation(batched=True)
        seen = []
        sim.schedule(1.0, seen.append, "early")
        sim.schedule(5.0, seen.append, "late")
        assert sim.run(until=2.0) == 2.0
        assert seen == ["early"]
