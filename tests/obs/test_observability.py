"""Session / runner integration and the obs-report summariser."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.obs import ObsLevel, Observability
from repro.obs.report import (
    format_report,
    heat_bar,
    load_metrics,
    series_percentile_rows,
    utilization_heat_rows,
)
from repro.simulation.config import ScaledConfig
from repro.simulation.runner import run_experiment


def small_config(technique: str = "simple"):
    return ScaledConfig(scale=50).with_(
        technique=technique, num_stations=2, access_mean=0.2
    )


class TestObsLevel:
    def test_parse(self):
        assert ObsLevel.parse("trace") is ObsLevel.TRACE
        assert ObsLevel.parse(None) is ObsLevel.OFF
        assert ObsLevel.parse(ObsLevel.METRICS) is ObsLevel.METRICS
        with pytest.raises(ConfigurationError):
            ObsLevel.parse("verbose")

    def test_paths_imply_levels(self, tmp_path):
        obs = Observability(level="off", metrics_path=tmp_path / "m.json")
        assert obs.level is ObsLevel.METRICS
        obs = Observability(level="off", trace_path=tmp_path / "t.jsonl")
        assert obs.level is ObsLevel.TRACE
        obs.finish()

    def test_off_session_opens_no_runs(self):
        obs = Observability(level="off")
        assert not obs.enabled
        assert obs.begin_run("x") is None


class TestRunnerIntegration:
    def test_off_rows_are_byte_identical(self):
        """--obs-level off must not perturb results at all."""
        config = small_config()
        baseline = run_experiment(config)
        observed = run_experiment(config, obs=Observability(level="trace"))
        assert baseline.summary() == observed.summary()
        assert baseline.profile == {} and baseline.observation is None

    def test_observed_run_attaches_profile_and_metrics(self):
        obs = Observability(level="metrics")
        result = run_experiment(small_config(), obs=obs)
        assert result.profile  # wall-clock phase totals
        assert "engine.advance" in result.profile
        metrics = result.observation["metrics"]
        # Per-disk utilization for every disk in the array.
        assert len(metrics["disk.busy"]["utilization"]) == 20
        assert metrics["admission.queue_depth"]["type"] == "series"
        # The profile never leaks into the deterministic summary rows.
        assert "profile" not in result.summary()
        # Storage gauges: one per drive.
        storage = [k for k in metrics if k.startswith("disk.storage_cylinders")]
        assert len(storage) == 20

    def test_vdr_reports_per_disk_utilization_too(self):
        obs = Observability(level="metrics")
        result = run_experiment(small_config("vdr"), obs=obs)
        metrics = result.observation["metrics"]
        assert len(metrics["disk.busy"]["utilization"]) == 20

    def test_session_collects_one_snapshot_per_run(self, tmp_path):
        obs = Observability(
            level="metrics", metrics_path=tmp_path / "metrics.json"
        )
        run_experiment(small_config(), obs=obs)
        run_experiment(small_config("vdr"), obs=obs)
        written = obs.finish()
        assert written == [tmp_path / "metrics.json"]
        document = load_metrics(tmp_path / "metrics.json")
        assert document["level"] == "metrics"
        assert [run["index"] for run in document["runs"]] == [0, 1]

    def test_trace_session_streams_jsonl(self, tmp_path):
        from repro.obs import read_jsonl

        obs = Observability(trace_path=tmp_path / "trace.jsonl")
        run_experiment(small_config(), obs=obs)
        obs.finish()
        events = read_jsonl(tmp_path / "trace.jsonl")
        assert events
        kinds = {event.kind for event in events}
        assert {"run", "scheduler", "display", "counter"} <= kinds


class TestReport:
    def test_heat_bar_extremes(self):
        assert heat_bar(0.0).strip() == ""
        assert heat_bar(1.0, width=4) == "████"
        assert len(heat_bar(0.37, width=10)) == 10

    def test_report_from_live_run(self):
        obs = Observability(level="metrics")
        run_experiment(small_config(), obs=obs)
        document = obs.metrics_document()
        metrics = document["runs"][0]["metrics"]
        rows = utilization_heat_rows(metrics)
        assert len(rows) == 20 and "disk[  0]" in rows[0]
        depth = series_percentile_rows(metrics)
        assert {"admission.queue_depth",
                "tertiary.queue_depth{device=tertiary}"} <= {
            row["series"] for row in depth
        }
        text = format_report(document)
        assert "per-disk utilization" in text
        assert "wall-clock profile" in text

    def test_report_run_index_bounds(self):
        with pytest.raises(ConfigurationError):
            format_report({"runs": [{"metrics": {}}]}, run_index=3)
        assert format_report({"runs": []}) == "no runs recorded"

    def test_load_metrics_rejects_non_documents(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text("[1, 2]")
        with pytest.raises(ConfigurationError):
            load_metrics(bogus)


class TestCliObservability:
    RUN = ["run", "--scale", "50", "--technique", "simple",
           "--stations", "2", "--mean", "0.2"]

    def test_output_extension_validated_up_front(self, capsys):
        with pytest.raises(SystemExit):
            main(self.RUN + ["--output", "rows.yaml"])
        assert "must end in .csv or .json" in capsys.readouterr().err

    def test_obs_flags_write_both_files(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        code = main(self.RUN + ["--trace", str(trace),
                                "--metrics", str(metrics)])
        assert code == 0
        assert trace.exists() and metrics.exists()
        document = json.loads(metrics.read_text())
        assert document["level"] == "trace"
        assert len(document["runs"]) == 1

    def test_metrics_level_prints_inline_report(self, capsys):
        assert main(self.RUN + ["--obs-level", "metrics"]) == 0
        out = capsys.readouterr().out
        assert "per-disk utilization" in out
        assert "queue depth percentiles" in out

    def test_obs_report_command(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.jsonl"
        main(self.RUN + ["--trace", str(trace), "--metrics", str(metrics)])
        capsys.readouterr()
        chrome = tmp_path / "chrome.json"
        code = main(["obs-report", str(metrics), "--run", "0",
                     "--trace", str(trace), "--chrome", str(chrome)])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-disk utilization" in out
        document = json.loads(chrome.read_text())
        assert document["traceEvents"]

    def test_obs_report_requires_an_input(self, capsys):
        assert main(["obs-report"]) == 2
        assert main(["obs-report", "--chrome", "x.json"]) == 2

    def test_figure8_off_rows_identical_to_seed_path(self, capsys):
        """The figure8 command emits the same rows with and without obs."""
        from repro.experiments.figure8 import figure8_rows, run_figure8

        kwargs = dict(scale=50, stations=[2], means=[0.2],
                      techniques=("simple", "vdr"))
        plain = figure8_rows(run_figure8(**kwargs))
        observed = figure8_rows(
            run_figure8(obs=Observability(level="trace"), **kwargs)
        )
        assert plain == observed
