"""Unit tests for the sweep progress event bus (repro.obs.events)."""

from __future__ import annotations

import json

import pytest

from repro.obs.events import (
    EVENTS_SUFFIX,
    PROGRESS_SCHEMA,
    SweepEventBus,
    events_path,
    list_event_streams,
    load_events,
    load_progress,
    progress_bar,
    render_progress,
    replay_events,
    settled_events_digest,
)


class TestBusAndLoad:
    def test_round_trip(self, tmp_path):
        bus = SweepEventBus(tmp_path, "abc123")
        bus.emit("sweep_begin", total=2, jobs=1)
        bus.emit("run_settled", index=0, digest="d0", status="ok")
        bus.close()
        events = load_events(events_path(tmp_path, "abc123"))
        assert [e["event"] for e in events] == ["sweep_begin", "run_settled"]
        assert all("ts" in e for e in events)
        assert bus.emitted == 2

    def test_missing_file_is_empty_stream(self, tmp_path):
        assert load_events(tmp_path / "nope.events.jsonl") == []

    def test_torn_tail_tolerated(self, tmp_path):
        """Mirror the journal's torn-tail semantics: a crash mid-append
        loses only the torn line."""
        bus = SweepEventBus(tmp_path, "torn")
        bus.emit("sweep_begin", total=3)
        bus.emit("run_settled", index=0, digest="d0", status="ok")
        bus.close()
        path = events_path(tmp_path, "torn")
        with path.open("a") as handle:
            handle.write('{"event": "run_settled", "index": 1, "dig')
        events = load_events(path)
        assert [e["event"] for e in events] == ["sweep_begin", "run_settled"]
        # Appends after the torn line still load (scribble mid-stream).
        bus2 = SweepEventBus(tmp_path, "torn")
        bus2.emit("sweep_end", status="complete")
        bus2.close()
        events = load_events(path)
        assert events[-1]["event"] == "sweep_end"

    def test_non_event_lines_skipped(self, tmp_path):
        path = tmp_path / f"x{EVENTS_SUFFIX}"
        path.write_text('[1,2]\n{"no_event_key": 1}\n{"event": "heartbeat"}\n')
        assert [e["event"] for e in load_events(path)] == ["heartbeat"]

    def test_emission_failure_never_raises(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        bus = SweepEventBus(blocker / "sub", "dead")  # parent is a file
        bus.emit("sweep_begin", total=1)  # must not raise
        assert bus.emitted == 0
        bus.emit("sweep_end")  # dead bus stays silent
        bus.close()

    def test_list_event_streams(self, tmp_path):
        SweepEventBus(tmp_path, "bbb").emit("sweep_begin")
        SweepEventBus(tmp_path, "aaa").emit("sweep_begin")
        (tmp_path / "cc.jsonl").write_text("{}\n")  # a journal, not a stream
        names = [p.name for p in list_event_streams(tmp_path)]
        assert names == [f"aaa{EVENTS_SUFFIX}", f"bbb{EVENTS_SUFFIX}"]


class TestSettledDigest:
    def settled(self, digest, status="ok", **extra):
        return {
            "event": "run_settled",
            "digest": digest,
            "status": status,
            **extra,
        }

    def test_order_independent(self):
        a = [self.settled("d0"), self.settled("d1", "error", poisoned=True)]
        b = list(reversed(a))
        assert settled_events_digest(a) == settled_events_digest(b)

    def test_cache_hit_equals_fresh_ok(self):
        """A warm sweep (cache hits) digests identically to the fresh
        sweep that populated the cache."""
        fresh = [self.settled("d0"), self.settled("d1")]
        warm = [
            {"event": "cache_hit", "digest": "d1"},
            {"event": "cache_hit", "digest": "d0"},
        ]
        assert settled_events_digest(fresh) == settled_events_digest(warm)

    def test_status_changes_digest(self):
        ok = [self.settled("d0")]
        err = [self.settled("d0", "error")]
        assert settled_events_digest(ok) != settled_events_digest(err)

    def test_journal_hit_carries_status(self):
        resumed = [
            {"event": "journal_hit", "digest": "d0", "status": "error",
             "poisoned": True},
        ]
        fresh = [self.settled("d0", "error", poisoned=True)]
        assert settled_events_digest(resumed) == settled_events_digest(fresh)

    def test_duplicates_collapse(self):
        once = [self.settled("d0")]
        twice = [self.settled("d0"), {"event": "cache_hit", "digest": "d0"}]
        assert settled_events_digest(once) == settled_events_digest(twice)

    def test_scheduling_events_ignored(self):
        noisy = [
            {"event": "worker_spawned", "worker": 0},
            self.settled("d0"),
            {"event": "heartbeat", "settled": 1},
            {"event": "run_retried", "index": 3},
        ]
        assert settled_events_digest(noisy) == settled_events_digest(
            [self.settled("d0")]
        )


class TestReplay:
    def stream(self):
        return [
            {"event": "sweep_begin", "ts": 10.0, "sweep_id": "s1", "total": 4,
             "jobs": 2, "argv": ["sweep", "--values", "1", "2"]},
            {"event": "cache_hit", "ts": 10.1, "digest": "dc", "index": 0},
            {"event": "worker_spawned", "ts": 10.2, "worker": 0},
            {"event": "worker_spawned", "ts": 10.2, "worker": 1},
            {"event": "run_leased", "ts": 10.3, "index": 1, "digest": "d1",
             "label": "run-1", "worker": 0, "attempt": 1},
            {"event": "run_leased", "ts": 10.3, "index": 2, "digest": "d2",
             "label": "run-2", "worker": 1, "attempt": 1},
            {"event": "run_settled", "ts": 11.0, "index": 1, "digest": "d1",
             "status": "ok", "duration_s": 0.7, "attempts": 1},
            {"event": "run_retried", "ts": 11.2, "index": 2, "attempt": 1,
             "delay_s": 0.5},
            {"event": "worker_died", "ts": 11.5, "worker": 1,
             "reason": "worker process died mid-run (exit code -9)"},
        ]

    def test_mid_flight_snapshot(self):
        progress = replay_events(self.stream())
        assert progress.sweep_id == "s1"
        assert progress.status == "in-flight"
        assert progress.total == 4
        assert progress.cache_hits == 1
        assert progress.executed == 1
        assert progress.retries == 1
        assert progress.workers_spawned == 2
        assert progress.workers_died == 1
        assert len(progress.settled) == 2  # dc + d1
        assert progress.completed == 2
        assert progress.pending == 2
        assert progress.workers[1]["state"] == "dead"
        assert progress.in_flight == {}  # 1 settled, 2 retried away

    def test_sweep_end_and_eta(self):
        events = self.stream() + [
            {"event": "run_settled", "ts": 12.0, "index": 2, "digest": "d2",
             "status": "error", "poisoned": True, "attempts": 2},
            {"event": "run_settled", "ts": 13.0, "index": 3, "digest": "d3",
             "status": "ok"},
            {"event": "sweep_end", "ts": 13.1, "status": "complete"},
        ]
        progress = replay_events(events)
        assert progress.status == "complete"
        assert progress.pending == 0
        assert progress.failed == 1
        assert progress.poisoned == 1
        assert progress.eta_s == 0.0
        assert progress.rate_per_s == pytest.approx(3 / 3.0)

    def test_resume_clears_transient_state(self):
        """A resumed sweep appends to the same stream: settled digests
        carry over, in-flight leases and workers do not."""
        events = self.stream() + [
            {"event": "sweep_begin", "ts": 20.0, "sweep_id": "s1",
             "total": 4, "jobs": 1},
            {"event": "journal_hit", "ts": 20.1, "digest": "d1",
             "status": "ok"},
        ]
        progress = replay_events(events)
        assert progress.status == "in-flight"
        assert progress.workers == {}
        assert progress.in_flight == {}
        # d1 settled fresh earlier: the journal hit must not double-count.
        assert len(progress.settled) == 2
        assert progress.resumed == 0

    def test_load_progress_missing_stream(self, tmp_path):
        progress = load_progress(tmp_path, "nope")
        assert progress.sweep_id == "nope"
        assert progress.status == "unknown"
        assert progress.total == 0


class TestRendering:
    def test_progress_bar(self):
        assert progress_bar(0, 0, width=4) == "[    ]"
        assert progress_bar(2, 4, width=4) == "[##..]"
        assert progress_bar(9, 4, width=4) == "[####]"

    def test_snapshot_schema_and_render_agree(self):
        """--json emits exactly what the --follow renderer consumes."""
        progress = replay_events(TestReplay().stream())
        snapshot = progress.to_dict()
        assert snapshot["schema"] == PROGRESS_SCHEMA
        assert json.loads(json.dumps(snapshot)) == snapshot  # JSON-safe
        text = render_progress(snapshot)
        assert "sweep s1" in text
        assert "2/4" in text
        assert "w1:dead" in text
        assert "command: repro sweep --values 1 2" in text

    def test_render_empty_snapshot(self):
        text = render_progress(replay_events([]).to_dict())
        assert "[unknown]" in text
