"""Trace round-trip tests: emit → JSONL → parse → Chrome export."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.trace import (
    BoundedLog,
    JsonlSink,
    MemorySink,
    TraceEvent,
    Tracer,
    chrome_trace_events,
    convert_jsonl_to_chrome,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)


class TestBoundedLog:
    def test_drops_oldest_and_counts(self):
        log = BoundedLog(capacity=3)
        for i in range(5):
            log.append(i)
        assert list(log) == [2, 3, 4]
        assert log.dropped == 2
        assert log.tail(2) == [3, 4]

    def test_unbounded(self):
        log = BoundedLog()
        for i in range(100):
            log.append(i)
        assert len(log) == 100 and log.dropped == 0


class TestTracer:
    def test_memory_sink_ring_buffer(self):
        tracer = Tracer(MemorySink(capacity=2))
        for i in range(4):
            tracer.instant("k", f"e{i}", float(i))
        events = tracer.sink.events()
        assert [e.name for e in events] == ["e2", "e3"]
        assert tracer.sink.emitted == 4

    def test_helpers_set_phases(self):
        tracer = Tracer(MemorySink())
        tracer.begin("process", "p", 0.0)
        tracer.end("process", "p", 1.0)
        tracer.complete("display", "d", 0.0, dur=3.0, object=7)
        tracer.counter("load", 2.0, queued=4)
        phases = [e.ph for e in tracer.sink.events()]
        assert phases == ["B", "E", "X", "C"]
        complete = tracer.sink.events()[2]
        assert complete.dur == 3.0 and complete.args["object"] == 7


class TestJsonlRoundTrip:
    EVENTS = [
        TraceEvent(t=0.0, kind="process", name="clock", ph="B",
                   args={"track": "clock"}),
        TraceEvent(t=1.5, kind="hold", name="clock", ph="i",
                   args={"delay": 1.5, "track": "clock"}),
        TraceEvent(t=2.0, kind="display", name="display-1", ph="X", dur=4.0,
                   args={"track": "displays"}),
        TraceEvent(t=2.0, kind="counter", name="load", ph="C",
                   args={"queued": 3}),
    ]

    def test_write_read_identity(self, tmp_path):
        path = write_jsonl(self.EVENTS, tmp_path / "trace.jsonl")
        assert read_jsonl(path) == self.EVENTS

    def test_streaming_sink_matches_batch_writer(self, tmp_path):
        streamed = tmp_path / "streamed.jsonl"
        sink = JsonlSink(streamed)
        for event in self.EVENTS:
            sink.write(event)
        sink.close()
        batch = write_jsonl(self.EVENTS, tmp_path / "batch.jsonl")
        assert streamed.read_text() == batch.read_text()

    def test_bad_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 0, "kind": "k", "name": "n"}\nnot json\n')
        with pytest.raises(ConfigurationError, match="bad.jsonl:2"):
            read_jsonl(path)


class TestChromeExport:
    def test_phases_timescale_and_track_interning(self):
        chrome = chrome_trace_events(TestJsonlRoundTrip.EVENTS)
        data = [r for r in chrome if r.get("ph") != "M"]
        meta = [r for r in chrome if r.get("ph") == "M"]
        assert [r["ph"] for r in data] == ["B", "i", "X", "C"]
        # Model seconds → microseconds.
        assert data[1]["ts"] == pytest.approx(1.5e6)
        assert data[2]["dur"] == pytest.approx(4.0e6)
        # Same track → same tid; the 'track' arg never leaks into args.
        assert data[0]["tid"] == data[1]["tid"]
        assert all("track" not in r["args"] for r in data)
        # Interned tracks get thread_name metadata for the viewer.
        assert {m["args"]["name"] for m in meta} == {"clock", "displays"}

    def test_full_pipeline_to_chrome_file(self, tmp_path):
        jsonl = write_jsonl(TestJsonlRoundTrip.EVENTS, tmp_path / "t.jsonl")
        chrome_path = convert_jsonl_to_chrome(jsonl, tmp_path / "t.json")
        document = json.loads(chrome_path.read_text())
        assert "traceEvents" in document
        assert len(document["traceEvents"]) >= len(TestJsonlRoundTrip.EVENTS)

    def test_write_chrome_trace_direct(self, tmp_path):
        path = write_chrome_trace(TestJsonlRoundTrip.EVENTS, tmp_path / "c.json")
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"


class TestKernelTracing:
    def test_simulation_emits_process_spans_and_facility_events(self):
        from repro.sim.kernel import Simulation, hold
        from repro.sim.resources import Facility

        tracer = Tracer(MemorySink())
        sim = Simulation(tracer=tracer)
        facility = Facility(sim, name="drive")

        def worker():
            yield facility.request()
            yield hold(2.0)
            facility.release()

        sim.spawn(worker(), name="w1")
        sim.spawn(worker(), name="w2")
        sim.run()
        kinds = {e.kind for e in tracer.sink.events()}
        assert {"process", "hold", "facility"} <= kinds
        process = [e for e in tracer.sink.events() if e.kind == "process"]
        # One B and one E per process.
        assert sorted(e.ph for e in process) == ["B", "B", "E", "E"]
        facility_events = [
            e.name for e in tracer.sink.events() if e.kind == "facility"
        ]
        # The second worker queues, then acquires on handoff.
        assert "drive.queue" in facility_events
        assert facility_events.count("drive.acquire") == 2
