"""Unit tests for cross-run aggregation and diffing (repro.obs.aggregate)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.aggregate import (
    DIFF_SCHEMA,
    diff_metrics,
    flatten_bench,
    flatten_rows,
    flatten_runs,
    load_metrics_source,
    render_diff,
)


def run_snapshot(label, value, points=None):
    return {
        "label": label,
        "index": 0,
        "profile": {"simulate": 1.25, "validate": 0.5},
        "metrics": {
            "disk.reads": {"type": "counter", "value": value},
            "queue.depth": {
                "type": "series",
                "mean": value / 2,
                "p50": 1.0,
                "p90": 2.0,
                "p99": 3.0,
                "min": 0.0,
                "max": 4.0,
                "seen": 100,
                "stride": 1,
                "points": points or [[0, 1], [1, 2]],
            },
        },
    }


class TestFlattenRuns:
    def test_numeric_leaves_keyed_by_label(self):
        flat = flatten_runs([run_snapshot("run-a", 10)])
        assert flat["run-a/disk.reads.value"] == 10
        assert flat["run-a/queue.depth.mean"] == 5.0
        assert flat["run-a/queue.depth.p99"] == 3.0

    def test_vector_fields_excluded(self):
        flat = flatten_runs([run_snapshot("run-a", 10)])
        assert not any("points" in key for key in flat)

    def test_profile_excluded_by_default(self):
        flat = flatten_runs([run_snapshot("run-a", 10)])
        assert not any("profile" in key for key in flat)
        with_profile = flatten_runs(
            [run_snapshot("run-a", 10)], include_profile=True
        )
        assert with_profile["run-a/profile.simulate"] == 1.25

    def test_exec_run_skipped_by_default(self):
        """The executor's own observation tallies host wall-clock —
        noise between byte-identical sweeps."""
        runs = [run_snapshot("sweep-exec[3 runs]", 9), run_snapshot("r", 1)]
        flat = flatten_runs(runs)
        assert not any(key.startswith("sweep-exec[") for key in flat)
        assert flatten_runs(runs, include_exec=True) != flat

    def test_duplicate_labels_disambiguated(self):
        runs = [run_snapshot("r", 1), run_snapshot("r", 2)]
        flat = flatten_runs(runs)
        assert flat["r/disk.reads.value"] == 1
        assert flat["r#1/disk.reads.value"] == 2


class TestFlattenOtherSources:
    def test_bench(self):
        doc = {
            "schema": "repro-bench/1",
            "cases": [
                {
                    "name": "hotpath",
                    "speedup": 1.8,
                    "byte_identical": True,
                    "indexed": {"median_s": 0.5},
                    "legacy": {"median_s": 0.9},
                }
            ],
        }
        flat = flatten_bench(doc)
        assert flat["bench.hotpath.speedup"] == 1.8
        assert flat["bench.hotpath.byte_identical"] == 1.0
        assert flat["bench.hotpath.indexed.median_s"] == 0.5
        assert flat["bench.hotpath.legacy.median_s"] == 0.9

    def test_bench_schema_two(self):
        doc = {
            "schema": "repro-bench/2",
            "pair": "batch",
            "cases": [
                {
                    "name": "batched",
                    "speedup": 5.4,
                    "byte_identical": True,
                    "fast": {"median_s": 0.1},
                    "reference": {"median_s": 0.54},
                }
            ],
        }
        flat = flatten_bench(doc)
        assert flat["bench.batched.speedup"] == 5.4
        assert flat["bench.batched.fast.median_s"] == 0.1
        assert flat["bench.batched.reference.median_s"] == 0.54

    def test_rows(self):
        rows = [
            {"level": "metrics", "overhead_pct": 1.5, "cpu_seconds": 2.0},
            {"level": "trace", "overhead_pct": 4.0, "cpu_seconds": 2.1},
        ]
        flat = flatten_rows(rows)
        assert flat["row.metrics.overhead_pct"] == 1.5
        assert flat["row.trace.cpu_seconds"] == 2.1


def source(metrics, label="x", kind="test"):
    return {"label": label, "kind": kind, "metrics": metrics}


class TestDiff:
    def test_zero_delta(self):
        a = source({"m.value": 1.0, "n.value": 2.0})
        diff = diff_metrics(a, dict(a))
        assert diff["schema"] == DIFF_SCHEMA
        assert diff["compared"] == 2
        assert diff["changed"] == 0
        assert diff["breaches"] == 0

    def test_any_change_breaches_at_default_threshold(self):
        diff = diff_metrics(
            source({"m": 100.0}), source({"m": 100.0001})
        )
        assert diff["breaches"] == 1
        row = diff["rows"][0]
        assert row["delta"] == pytest.approx(0.0001)
        assert row["breach"]

    def test_relative_threshold(self):
        a = source({"m": 100.0, "n": 100.0})
        b = source({"m": 104.0, "n": 120.0})
        diff = diff_metrics(a, b, threshold=0.05)
        by_key = {row["key"]: row for row in diff["rows"]}
        assert not by_key["m"]["breach"]  # 4% < 5%
        assert by_key["n"]["breach"]  # ~16.7% > 5%
        assert diff["breaches"] == 1

    def test_min_abs_suppresses_tiny_deltas(self):
        diff = diff_metrics(
            source({"m": 0.0}), source({"m": 1e-9}), min_abs=1e-6
        )
        assert diff["changed"] == 1
        assert diff["breaches"] == 0

    def test_only_glob(self):
        a = source({"bench.x.speedup": 2.0, "bench.x.median_s": 0.5})
        b = source({"bench.x.speedup": 2.0, "bench.x.median_s": 0.9})
        diff = diff_metrics(a, b, only="*.speedup")
        assert diff["compared"] == 1
        assert diff["breaches"] == 0

    def test_direction_gates_breach_sign(self):
        """A speedup gate (`--direction decrease`) must not fail on
        improvements."""
        faster = diff_metrics(
            source({"speedup": 1.5}), source({"speedup": 2.0}),
            direction="decrease",
        )
        assert faster["changed"] == 1 and faster["breaches"] == 0
        slower = diff_metrics(
            source({"speedup": 1.5}), source({"speedup": 1.0}),
            direction="decrease",
        )
        assert slower["breaches"] == 1
        assert diff_metrics(
            source({"speedup": 1.5}), source({"speedup": 2.0}),
            direction="increase",
        )["breaches"] == 1
        with pytest.raises(ConfigurationError, match="direction"):
            diff_metrics(source({"m": 1.0}), source({"m": 1.0}),
                         direction="sideways")

    def test_added_and_removed_reported_not_breaching(self):
        diff = diff_metrics(
            source({"old": 1.0, "both": 2.0}),
            source({"new": 1.0, "both": 2.0}),
        )
        assert diff["added"] == ["new"]
        assert diff["removed"] == ["old"]
        assert diff["breaches"] == 0


class TestRender:
    def diff(self):
        return diff_metrics(source({"m": 1.0, "k": 5.0}), source({"m": 2.0, "k": 5.0}))

    def test_table(self):
        text = render_diff(self.diff(), "table")
        assert "BREACH" in text
        assert "1 breach(es)" in text
        assert "k" not in text.splitlines()[1]  # unchanged rows hidden

    def test_table_all_rows(self):
        text = render_diff(self.diff(), "table", all_rows=True)
        assert any(line.startswith("k") for line in text.splitlines())

    def test_markdown(self):
        text = render_diff(self.diff(), "markdown")
        assert text.startswith("| metric |")
        assert "| m |" in text

    def test_json_round_trips(self):
        document = json.loads(render_diff(self.diff(), "json"))
        assert document["schema"] == DIFF_SCHEMA
        assert document["breaches"] == 1


class TestLoadSource:
    def test_metrics_document(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(
            json.dumps({"level": "metrics", "runs": [run_snapshot("r", 3)]})
        )
        loaded = load_metrics_source(path)
        assert loaded["kind"] == "metrics-document"
        assert loaded["metrics"]["r/disk.reads.value"] == 3

    def test_obs_artifact(self, tmp_path):
        path = tmp_path / "a.obs.json"
        path.write_text(
            json.dumps(
                {
                    "schema": "repro-obs-artifact/1",
                    "digest": "d",
                    "level": "metrics",
                    "runs": [run_snapshot("r", 4)],
                }
            )
        )
        loaded = load_metrics_source(path)
        assert loaded["kind"] == "obs-artifact"
        assert loaded["metrics"]["r/disk.reads.value"] == 4

    def test_bench_document(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(
            json.dumps(
                {"schema": "repro-bench/1", "cases": [
                    {"name": "c", "speedup": 1.5}
                ]}
            )
        )
        loaded = load_metrics_source(path)
        assert loaded["kind"] == "bench"
        assert loaded["metrics"]["bench.c.speedup"] == 1.5

    def test_rows_list(self, tmp_path):
        path = tmp_path / "rows.json"
        path.write_text(json.dumps([{"level": "metrics", "pct": 2.5}]))
        loaded = load_metrics_source(path)
        assert loaded["kind"] == "rows"
        assert loaded["metrics"]["row.metrics.pct"] == 2.5

    def test_missing_json_path_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            load_metrics_source(tmp_path / "nope.json")

    def test_sweep_id_requires_cache(self):
        with pytest.raises(ConfigurationError, match="cache"):
            load_metrics_source("abcd1234")

    def test_unrecognised_document(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ConfigurationError, match="unrecognised"):
            load_metrics_source(path)
