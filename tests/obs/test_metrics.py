"""Tests for the metric primitives and the registry."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Tally,
    TimeSeries,
    TimeWeighted,
    UtilizationMatrix,
)


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)
        assert counter.snapshot() == {"type": "counter", "value": 3.5}

    def test_counter_rejects_decrease(self):
        with pytest.raises(ConfigurationError):
            Counter("c").inc(-1)

    def test_gauge_tracks_extremes(self):
        gauge = Gauge("g")
        for level in (3.0, -1.0, 7.0):
            gauge.set(level)
        snap = gauge.snapshot()
        assert snap["value"] == 7.0
        assert snap["min"] == -1.0
        assert snap["max"] == 7.0
        assert snap["updates"] == 3

    def test_empty_gauge_snapshot_is_finite(self):
        snap = Gauge("g").snapshot()
        assert snap["min"] == 0.0 and snap["max"] == 0.0


class TestTimeWeighted:
    def test_mean_weights_by_duration(self):
        clock = {"now": 0.0}
        tw = TimeWeighted(clock=lambda: clock["now"], initial=0.0)
        clock["now"] = 4.0
        tw.record(10.0)  # level 0 for 4s
        clock["now"] = 8.0
        # level 10 for 4s → mean (0*4 + 10*4) / 8 = 5
        assert tw.mean == pytest.approx(5.0)
        assert tw.maximum == 10.0


class TestTimeSeries:
    def test_decimation_bounds_memory(self):
        series = TimeSeries("s", max_points=8)
        for i in range(1000):
            series.record(float(i), float(i))
        assert len(series) < 8
        assert series.seen == 1000
        assert series.stride > 1
        # Coverage spans the whole run, not just a prefix.
        assert series.points[0][0] == 0.0
        assert series.points[-1][0] > 500.0
        # The tally still sees every sample.
        assert series.stats.count == 1000
        assert series.stats.mean == pytest.approx(499.5)

    def test_quantiles(self):
        series = TimeSeries("s")
        for i in range(100):
            series.record(float(i), float(i))
        assert series.quantile(0.0) == 0.0
        assert series.quantile(0.5) == pytest.approx(50.0)
        assert series.quantile(1.0) == 99.0
        assert TimeSeries("empty").quantile(0.5) is None


class TestUtilizationMatrix:
    def test_busy_fractions(self):
        matrix = UtilizationMatrix(num_devices=4, window=2)
        # Device 0 busy both intervals, device 1 busy one of two.
        matrix.mark(0)
        matrix.mark(1)
        matrix.tick(0.0)
        matrix.mark(0)
        matrix.tick(1.0)
        assert matrix.rows == [(1.0, [1.0, 0.5, 0.0, 0.0])]
        assert matrix.utilization() == [1.0, 0.5, 0.0, 0.0]

    def test_row_merging_doubles_window(self):
        matrix = UtilizationMatrix(num_devices=1, window=1, max_rows=4)
        for i in range(64):
            matrix.mark(0)
            matrix.tick(float(i))
        assert len(matrix.rows) < 4
        assert matrix.window > 1
        assert matrix.utilization() == [1.0]

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            UtilizationMatrix(num_devices=0)
        with pytest.raises(ConfigurationError):
            UtilizationMatrix(num_devices=1, window=0)


class TestRegistry:
    def test_same_instrument_per_label_set(self):
        registry = MetricsRegistry()
        a = registry.counter("disk.reads", disk=3)
        b = registry.counter("disk.reads", disk=3)
        c = registry.counter("disk.reads", disk=4)
        assert a is b and a is not c

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.gauge("x", disk=1, tier="ssd")
        b = registry.gauge("x", tier="ssd", disk=1)
        assert a is b

    def test_family_collects_per_device_instruments(self):
        registry = MetricsRegistry()
        for disk in range(3):
            registry.counter("disk.reads", disk=disk).inc(disk)
        family = registry.family("disk.reads")
        assert set(family) == {
            "disk.reads{disk=0}", "disk.reads{disk=1}", "disk.reads{disk=2}"
        }
        assert registry.counter("other").name == "other"
        assert len(registry.family("other")) == 1

    def test_snapshot_is_sorted_and_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        registry.series("s").record(0.0, 1.0)
        registry.tally("t").record(2.0)
        registry.utilization_matrix("u", num_devices=2).tick(0.0)
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)  # must not raise

    def test_snapshot_deterministic_across_creation_order(self):
        first = MetricsRegistry()
        first.counter("a").inc()
        first.counter("z", disk=1).inc()
        second = MetricsRegistry()
        second.counter("z", disk=1).inc()
        second.counter("a").inc()
        assert first.snapshot() == second.snapshot()

    def test_reexported_primitives_are_shared(self):
        # Satellite: repro.sim.monitor must be thin aliases over obs.
        from repro.sim import monitor

        assert monitor.Tally is Tally
        assert issubclass(monitor.TimeWeighted, TimeWeighted)
