"""Heartbeat compaction: bounded stream growth, identical fold.

A long sweep emits heartbeats every ``heartbeat_interval`` — by far
the dominant line count in ``<sweep_id>.events.jsonl``.  On reopen
(resume, or a master restarting) the bus compacts runs of consecutive
heartbeats down to the latest per source.  The regression bar from
the issue: :func:`replay_events` must fold to the identical
:class:`SweepProgress` before and after compaction.
"""

from __future__ import annotations

import json

from repro.obs.events import (
    SweepEventBus,
    compact_events_file,
    compact_heartbeat_lines,
    load_events,
    replay_events,
    settled_events_digest,
)


def _line(event: str, ts: float, **fields) -> str:
    record = {"event": event, "ts": ts}
    record.update(fields)
    return json.dumps(record) + "\n"


def synthetic_stream() -> list:
    """A busy stream: two local workers, two agents, one settle."""
    lines = [
        _line("sweep_begin", 1.0, sweep_id="abc", total=3, jobs=2),
        _line("worker_spawned", 1.1, worker=0),
        _line("worker_spawned", 1.2, worker=1),
    ]
    # A long run of heartbeats from three sources, interleaved.  Each
    # heartbeat is a full snapshot for its source, so only the latest
    # per source matters to any fold.
    for tick in range(20):
        ts = 2.0 + tick
        lines.append(
            _line("heartbeat", ts, workers={"0": None, "1": tick})
        )
        lines.append(_line("heartbeat", ts + 0.1, agent="agent-a"))
        lines.append(_line("heartbeat", ts + 0.2, agent="agent-b"))
    lines += [
        _line("run_leased", 30.0, index=0, label="row-0", worker=0),
        _line("heartbeat", 30.5, workers={"0": 0, "1": None}),
        _line("heartbeat", 30.6, workers={"0": 0, "1": None}),
        _line(
            "run_settled", 31.0, index=0, digest="d0", status="ok",
            poisoned=False, attempts=1, duration_s=1.0,
        ),
        _line("heartbeat", 31.5, workers={"0": None, "1": None}),
    ]
    return lines


class TestCompaction:
    def test_keeps_latest_heartbeat_per_source(self):
        lines = [
            _line("heartbeat", 1.0, agent="a"),
            _line("heartbeat", 2.0, agent="b"),
            _line("heartbeat", 3.0, agent="a"),
            _line("heartbeat", 4.0, agent="a"),
        ]
        compacted = compact_heartbeat_lines(lines)
        assert len(compacted) == 2
        assert json.loads(compacted[0])["ts"] == 4.0  # latest "a", in place
        assert json.loads(compacted[1])["agent"] == "b"

    def test_non_heartbeat_lines_are_barriers(self):
        lines = [
            _line("heartbeat", 1.0, agent="a"),
            _line("run_settled", 2.0, index=0, digest="d", status="ok"),
            _line("heartbeat", 3.0, agent="a"),
        ]
        compacted = compact_heartbeat_lines(lines)
        # The settle separates the two heartbeats: both survive, and
        # relative order with the barrier is untouched.
        assert compacted == lines

    def test_torn_tail_preserved_verbatim(self):
        torn = '{"event": "heartbeat", "ts": 9.0, "ag'
        lines = [
            _line("heartbeat", 1.0, agent="a"),
            _line("heartbeat", 2.0, agent="a"),
            torn,
        ]
        compacted = compact_heartbeat_lines(lines)
        assert compacted[-1] == torn
        assert len(compacted) == 2

    def test_replay_folds_identically_before_and_after(self, tmp_path):
        path = tmp_path / "abc.events.jsonl"
        path.write_text("".join(synthetic_stream()))

        before = replay_events(load_events(path))
        digest_before = settled_events_digest(load_events(path))
        raw_before = len(path.read_text().splitlines())

        assert compact_events_file(path) is True
        after = replay_events(load_events(path))
        raw_after = len(path.read_text().splitlines())

        assert raw_after < raw_before
        assert after.to_dict() == before.to_dict()
        assert settled_events_digest(load_events(path)) == digest_before

    def test_compaction_is_idempotent(self, tmp_path):
        path = tmp_path / "abc.events.jsonl"
        path.write_text("".join(synthetic_stream()))
        assert compact_events_file(path) is True
        once = path.read_text()
        assert compact_events_file(path) is False  # nothing left to drop
        assert path.read_text() == once

    def test_bus_reopen_compacts_previous_session(self, tmp_path):
        bus = SweepEventBus(tmp_path, "abc")
        bus.emit("sweep_begin", sweep_id="abc", total=1, jobs=1)
        for _ in range(10):
            bus.emit("heartbeat", workers={"0": None})
        bus.close()
        grown = len(bus.path.read_text().splitlines())
        assert grown == 11

        resumed = SweepEventBus(tmp_path, "abc")
        resumed.emit("sweep_begin", sweep_id="abc", total=1, jobs=1)
        resumed.close()
        lines = [
            json.loads(line)
            for line in bus.path.read_text().splitlines()
        ]
        # 10 heartbeats folded to 1; both sweep_begin records intact.
        assert [r["event"] for r in lines] == [
            "sweep_begin", "heartbeat", "sweep_begin",
        ]
