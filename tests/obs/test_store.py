"""Unit tests for the obs artifact store (repro.obs.store)."""

from __future__ import annotations

import json

from repro.exec.hashing import canonical_json
from repro.exec.spec import RunSpec, register_kind, run_spec
from repro.obs.store import ARTIFACT_SCHEMA, ObsArtifactStore, capture_run

DIGEST = "ab" + "0" * 62


def sample_runs():
    return [
        {
            "label": "run-a",
            "index": 0,
            "profile": {"simulate": 0.5},
            "metrics": {"disk.reads": {"type": "counter", "value": 7}},
        }
    ]


@register_kind("_observed")
def _observed_kind(spec, obs=None):
    """A kind that records deterministic telemetry when observed."""
    value = spec.params["value"]
    run = obs.begin_run(spec.describe()) if obs is not None else None
    if run is not None:
        run.registry.counter("observed.value").inc(value)
        if run.tracer is not None:
            run.tracer.instant("test", "observed", 0.0, value=value)
        obs.finish_run(run)
    return {"value": value, "cube": value**3}


class TestStoreRoundTrip:
    def test_put_get(self, tmp_path):
        store = ObsArtifactStore(tmp_path)
        assert store.get(DIGEST) is None
        store.put(DIGEST, sample_runs())
        artifact = store.get(DIGEST)
        assert artifact["schema"] == ARTIFACT_SCHEMA
        assert artifact["digest"] == DIGEST
        assert artifact["runs"] == sample_runs()
        assert len(store) == 1
        assert store.misses == 1 and store.hits == 1 and store.writes == 1

    def test_shares_cache_sharding(self, tmp_path):
        store = ObsArtifactStore(tmp_path)
        store.put(DIGEST, sample_runs())
        assert (
            tmp_path / "objects" / DIGEST[:2] / f"{DIGEST}.obs.json"
        ).is_file()

    def test_trace_level_round_trip(self, tmp_path):
        store = ObsArtifactStore(tmp_path, level="trace")
        trace = [{"t": 0.0, "kind": "test", "name": "x", "ph": "i"}]
        store.put(DIGEST, sample_runs(), trace)
        artifact = store.get(DIGEST)
        assert artifact["level"] == "trace"
        assert store.get_trace(DIGEST) == trace


class TestCorruptIsMiss:
    """Mirror ResultCache semantics: a corrupt artifact is a miss."""

    def test_corrupt_json(self, tmp_path):
        store = ObsArtifactStore(tmp_path)
        store.put(DIGEST, sample_runs())
        store.artifact_path(DIGEST).write_text("{ torn")
        assert store.get(DIGEST) is None

    def test_digest_mismatch(self, tmp_path):
        store = ObsArtifactStore(tmp_path)
        store.put(DIGEST, sample_runs())
        path = store.artifact_path(DIGEST)
        doc = json.loads(path.read_text())
        doc["digest"] = "f" * 64
        path.write_text(json.dumps(doc))
        assert store.get(DIGEST) is None

    def test_wrong_schema(self, tmp_path):
        store = ObsArtifactStore(tmp_path)
        store.put(DIGEST, sample_runs())
        path = store.artifact_path(DIGEST)
        doc = json.loads(path.read_text())
        doc["schema"] = "something-else/9"
        path.write_text(json.dumps(doc))
        assert store.get(DIGEST) is None

    def test_trace_level_requires_sidecar(self, tmp_path):
        """An artifact written at metrics level does not satisfy a
        trace-level reader; neither does a torn trace sidecar."""
        metrics_store = ObsArtifactStore(tmp_path, level="metrics")
        metrics_store.put(DIGEST, sample_runs())
        trace_store = ObsArtifactStore(tmp_path, level="trace")
        assert trace_store.get(DIGEST) is None
        trace_store.put(
            DIGEST, sample_runs(), [{"t": 0.0, "name": "x"}]
        )
        assert trace_store.get(DIGEST) is not None
        with trace_store.trace_path(DIGEST).open("a") as handle:
            handle.write('{"torn')
        assert trace_store.get(DIGEST) is None

    def test_rewrite_after_corruption(self, tmp_path):
        store = ObsArtifactStore(tmp_path)
        store.put(DIGEST, sample_runs())
        store.artifact_path(DIGEST).write_text("garbage")
        assert store.get(DIGEST) is None
        store.put(DIGEST, sample_runs())
        assert store.get(DIGEST)["runs"] == sample_runs()

    def test_unwritable_store_never_raises(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a dir")
        store = ObsArtifactStore(blocker / "sub")
        store.put(DIGEST, sample_runs())  # must not raise
        assert store.get(DIGEST) is None


class TestCaptureRun:
    def spec(self, value=3):
        return RunSpec(kind="_observed", params={"value": value})

    def test_payload_byte_identical_to_unobserved(self):
        """The PR 1 contract, exercised through capture_run: observing
        a run cannot change its payload."""
        payload, runs, trace = capture_run(self.spec(), "metrics")
        assert canonical_json(payload) == canonical_json(
            run_spec(self.spec())
        )
        assert len(runs) == 1
        metrics = runs[0]["metrics"]
        assert metrics["observed.value"]["value"] == 3
        assert trace == []  # metrics level records no trace

    def test_trace_capture(self):
        payload, runs, trace = capture_run(self.spec(5), "trace")
        assert payload["cube"] == 125
        assert any(event.get("name") == "observed" for event in trace)

    def test_store_integration(self, tmp_path):
        store = ObsArtifactStore(tmp_path, level="metrics")
        payload, runs, trace = capture_run(self.spec(), "metrics")
        store.put("cd" + "0" * 62, runs, trace)
        artifact = store.get("cd" + "0" * 62)
        assert artifact["runs"] == runs
