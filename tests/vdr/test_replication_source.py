"""Tests for the VDR replication-source variants."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hardware.tertiary import TertiaryDevice
from repro.media.catalog import Catalog
from repro.media.tape_layout import TapeLayout, TapeOrder
from repro.simulation.config import ScaledConfig
from repro.simulation.policy import Request
from repro.simulation.runner import run_experiment
from repro.vdr.clusters import ClusterArray
from repro.vdr.scheduler import VirtualReplicationPolicy
from tests.conftest import make_object


def build_policy(source, num_disks=15, degree=3, num_subobjects=6):
    catalog = Catalog(
        [make_object(i, num_subobjects=num_subobjects, degree=degree)
         for i in range(3)]
    )
    return catalog, VirtualReplicationPolicy(
        catalog=catalog,
        clusters=ClusterArray(num_disks=num_disks, degree=degree,
                              capacity_objects=1),
        device=TertiaryDevice(bandwidth=40.0, reposition_time=0.6),
        tape_layout=TapeLayout(TapeOrder.FRAGMENT_ORDERED),
        interval_length=0.6048,
        replication_source=source,
    )


def flood(policy, object_id, count):
    for i in range(count):
        policy.submit(
            Request(request_id=i + 1, station_id=i, object_id=object_id,
                    issued_at=0),
            interval=0,
        )


def run(policy, want, horizon=3000):
    completions = []
    for interval in range(horizon):
        completions.extend(policy.advance(interval))
        if len(completions) >= want:
            break
    return completions


class TestTertiarySource:
    def test_replica_created_through_tertiary(self):
        catalog, policy = build_policy("tertiary")
        policy.preload([0, 1, 2])
        flood(policy, 0, 3)
        completions = run(policy, 3)
        assert len(completions) == 3
        assert policy.replication.replicas_created >= 1
        # The replica went through the device, not a stream clone.
        assert policy.tertiary_busy_intervals > 0

    def test_tertiary_source_is_slower_than_stream(self):
        results = {}
        for source in ("stream", "tertiary"):
            catalog, policy = build_policy(source, num_subobjects=8)
            policy.preload([0, 1, 2])
            flood(policy, 0, 4)
            completions = run(policy, 4)
            results[source] = max(c.finished_at for c in completions)
        assert results["stream"] <= results["tertiary"]

    def test_invalid_source_rejected(self):
        with pytest.raises(ConfigurationError):
            build_policy("carrier-pigeon")


class TestRunnerWiring:
    def test_config_flag_reaches_policy(self):
        config = ScaledConfig(
            scale=50, technique="vdr", num_stations=4, access_mean=0.2,
            replication_source="tertiary",
        )
        result = run_experiment(config)
        assert result.completed > 0

    def test_config_validates_source(self):
        with pytest.raises(ConfigurationError):
            ScaledConfig(replication_source="nope")
