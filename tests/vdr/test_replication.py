"""Tests for the MRT replication policy."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.vdr.clusters import ClusterArray
from repro.vdr.replication import MRTReplication


def build(threshold=1, frequencies=None, pinned=None):
    array = ClusterArray(num_disks=20, degree=5, capacity_objects=1)
    frequencies = frequencies or {}
    pinned = pinned or set()
    policy = MRTReplication(
        array,
        frequency_of=lambda oid: frequencies.get(oid, 0),
        is_pinned=lambda oid: oid in pinned,
        threshold=threshold,
    )
    return array, policy


class TestTrigger:
    def test_replicates_when_waiters_exceed_copies(self):
        array, policy = build()
        array.add_copy(1, 0)
        assert policy.should_replicate(1, still_waiting=1)

    def test_no_replication_without_waiters(self):
        array, policy = build()
        array.add_copy(1, 0)
        assert not policy.should_replicate(1, still_waiting=0)

    def test_threshold_scales_with_copies(self):
        array, policy = build(threshold=2)
        array.add_copy(1, 0)
        array.add_copy(1, 1)
        assert not policy.should_replicate(1, still_waiting=3)
        assert policy.should_replicate(1, still_waiting=4)

    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            build(threshold=0)


class TestVictimSelection:
    def test_prefers_empty_clusters(self):
        array, policy = build(frequencies={1: 100})
        array.add_copy(1, 0)
        victim = policy.choose_victim(interval=0)
        assert victim is not None
        assert not victim.resident  # an empty cluster beats any content

    def test_prefers_cold_content(self):
        array, policy = build(frequencies={1: 100, 2: 1, 3: 50})
        for cluster, obj in enumerate((1, 2, 3)):
            array.add_copy(obj, cluster)
        array.add_copy(99, 3)  # fills the last cluster; freq 0
        victim = policy.choose_victim(interval=0)
        assert 99 in victim.resident

    def test_surplus_replicas_are_cheap(self):
        """A second copy of a hot object is cheaper than the single
        copy of a lukewarm one (value = freq / copies)."""
        array, policy = build(frequencies={1: 100, 2: 60})
        array.add_copy(1, 0)
        array.add_copy(1, 1)  # copy value 50
        array.add_copy(2, 2)  # copy value 60
        array.add_copy(1, 3)  # third copy -> value 33
        victim = policy.choose_victim(interval=0)
        assert 1 in victim.resident

    def test_pinned_last_copy_protected(self):
        array, policy = build(frequencies={1: 0}, pinned={1})
        array.add_copy(1, 0)
        for cluster, obj in enumerate((2, 3, 4), start=1):
            array.add_copy(obj, cluster)
        victim = policy.choose_victim(interval=0)
        assert victim is not None
        assert 1 not in victim.resident

    def test_pinned_with_multiple_copies_still_evictable(self):
        array, policy = build(frequencies={1: 0}, pinned={1})
        array.add_copy(1, 0)
        array.add_copy(1, 1)
        for cluster, obj in enumerate((2, 3), start=2):
            array.add_copy(obj, cluster)
        victim = policy.choose_victim(interval=0)
        assert victim is not None

    def test_busy_clusters_skipped(self):
        array, policy = build()
        for cluster in array.clusters:
            cluster.occupy(0, 10, "display", 9)
        assert policy.choose_victim(interval=0) is None

    def test_protect_object_not_chosen(self):
        array, policy = build(frequencies={})
        array.add_copy(5, 0)
        for cluster in array.clusters[1:]:
            cluster.occupy(0, 10, "display", 9)
        assert policy.choose_victim(interval=0, protect_object=5) is None
