"""Tests for VDR clusters and the copy directory."""

from __future__ import annotations

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.vdr.clusters import Cluster, ClusterArray


@pytest.fixture
def array():
    return ClusterArray(num_disks=15, degree=5, capacity_objects=1)


class TestShape:
    def test_cluster_count_and_disks(self, array):
        assert len(array) == 3
        assert array.clusters[1].first_disk == 5
        assert array.clusters[1].num_disks == 5

    def test_divisibility_enforced(self):
        with pytest.raises(ConfigurationError):
            ClusterArray(num_disks=10, degree=3, capacity_objects=1)

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            ClusterArray(num_disks=10, degree=5, capacity_objects=0)


class TestCopyDirectory:
    def test_add_and_remove_copy(self, array):
        array.add_copy(7, 0)
        assert array.copy_count(7) == 1
        assert [c.index for c in array.holders(7)] == [0]
        array.remove_copy(7, 0)
        assert array.copy_count(7) == 0
        assert array.holders(7) == []

    def test_capacity_one_object_per_cluster(self, array):
        array.add_copy(1, 0)
        with pytest.raises(CapacityError):
            array.add_copy(2, 0)

    def test_replicas_across_clusters(self, array):
        array.add_copy(1, 0)
        array.add_copy(1, 2)
        assert array.copy_count(1) == 2

    def test_evict_all(self, array):
        array.add_copy(1, 0)
        assert array.evict_all(0) == [1]
        assert array.copy_count(1) == 0
        assert array.clusters[0].has_space


class TestBusyness:
    def test_occupy_and_finish(self, array):
        cluster = array.clusters[0]
        cluster.occupy(interval=3, duration=10, activity="display", object_id=1)
        assert not cluster.is_free(5)
        assert cluster.is_free(13)
        assert cluster.activity == "display"
        cluster.finish()
        assert cluster.activity is None

    def test_double_occupy_rejected(self, array):
        cluster = array.clusters[0]
        cluster.occupy(0, 5, "display", 1)
        with pytest.raises(CapacityError):
            cluster.occupy(3, 5, "clone", 2)

    def test_duration_validated(self, array):
        with pytest.raises(ConfigurationError):
            array.clusters[0].occupy(0, 0, "display", 1)

    def test_free_holder_prefers_lowest_index(self, array):
        array.add_copy(1, 0)
        array.add_copy(1, 2)
        array.clusters[0].occupy(0, 5, "display", 1)
        holder = array.free_holder(1, interval=0)
        assert holder.index == 2
        assert array.free_holder(1, interval=0) is not None

    def test_free_clusters(self, array):
        array.clusters[1].occupy(0, 5, "display", 1)
        free = [c.index for c in array.free_clusters(0)]
        assert free == [0, 2]
