"""Tests for the VDR storage policy."""

from __future__ import annotations

import pytest

from repro.hardware.tertiary import TertiaryDevice
from repro.media.catalog import Catalog
from repro.media.tape_layout import TapeLayout, TapeOrder
from repro.simulation.policy import Request
from repro.vdr.clusters import ClusterArray
from repro.vdr.scheduler import VirtualReplicationPolicy
from tests.conftest import make_object


def build_policy(
    num_disks=15, degree=3, num_objects=4, num_subobjects=6, threshold=1
):
    catalog = Catalog(
        [make_object(i, num_subobjects=num_subobjects, degree=degree)
         for i in range(num_objects)]
    )
    clusters = ClusterArray(
        num_disks=num_disks, degree=degree, capacity_objects=1
    )
    return VirtualReplicationPolicy(
        catalog=catalog,
        clusters=clusters,
        device=TertiaryDevice(bandwidth=40.0, reposition_time=0.6),
        tape_layout=TapeLayout(TapeOrder.FRAGMENT_ORDERED),
        interval_length=0.6048,
        replication_threshold=threshold,
    )


def request(request_id, object_id, issued_at=0):
    return Request(request_id=request_id, station_id=0, object_id=object_id,
                   issued_at=issued_at)


def run_until(policy, count, horizon=2000):
    completions = []
    for interval in range(horizon):
        completions.extend(policy.advance(interval))
        if len(completions) >= count:
            break
    return completions


class TestDisplays:
    def test_resident_display_monopolises_cluster(self):
        policy = build_policy()
        policy.preload([0])
        policy.submit(request(1, 0), 0)
        completions = run_until(policy, 1)
        assert len(completions) == 1
        assert completions[0].deliver_start == 0
        assert completions[0].finished_at == 5

    def test_same_object_requests_serialise_without_replication(self):
        """With replication impossible (all clusters hold pinned last
        copies), two requests for one object run back to back."""
        policy = build_policy(num_disks=6, degree=3, num_objects=2,
                              num_subobjects=4)
        policy.preload([0, 1])
        policy.submit(request(1, 0), 0)
        policy.submit(request(2, 0), 0)
        policy.submit(request(3, 1), 0)  # pins object 1's last copy
        completions = run_until(policy, 3)
        finishes = sorted(
            c.finished_at for c in completions if c.request.object_id == 0
        )
        assert finishes == [3, 7]  # strictly serial on the one cluster

    def test_miss_materialises_from_tertiary(self):
        policy = build_policy(num_objects=4)
        policy.preload([0, 1, 2])
        policy.submit(request(1, 3), 0)
        completions = run_until(policy, 1)
        assert len(completions) == 1
        assert completions[0].startup_latency > 0
        assert policy.materializations == 1
        assert policy.clusters.copy_count(3) == 1


class TestReplication:
    def test_queue_pressure_creates_replica(self):
        policy = build_policy(num_disks=15, degree=3, num_objects=2,
                              num_subobjects=6)
        policy.preload([0, 1])
        for i in range(3):
            policy.submit(request(i + 1, 0), 0)
        run_until(policy, 3)
        assert policy.replication.replicas_created >= 1
        assert policy.clusters.copy_count(0) >= 2

    def test_replica_serves_later_requests_in_parallel(self):
        policy = build_policy(num_disks=15, degree=3, num_objects=2,
                              num_subobjects=8)
        policy.preload([0, 1])
        for i in range(3):
            policy.submit(request(i + 1, 0), 0)
        completions = run_until(policy, 3)
        finishes = sorted(c.finished_at for c in completions)
        # Without replication three serial displays end at 7, 15, 23;
        # the clone (ready at interval 8) lets the third overlap.
        assert finishes[2] < 23

    def test_no_replication_without_spare_cluster(self):
        policy = build_policy(num_disks=3, degree=3, num_objects=1,
                              num_subobjects=4)
        policy.preload([0])
        for i in range(2):
            policy.submit(request(i + 1, 0), 0)
        completions = run_until(policy, 2)
        assert policy.replication.replicas_created == 0
        assert sorted(c.finished_at for c in completions) == [3, 7]


class TestStats:
    def test_hit_and_miss_accounting(self):
        policy = build_policy()
        policy.preload([0])
        policy.submit(request(1, 0), 0)
        policy.submit(request(2, 3), 0)
        run_until(policy, 2)
        stats = policy.stats()
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["completed_displays"] == 2.0
        assert stats["materializations"] == 1.0

    def test_pending_count_tracks_queue_and_active(self):
        policy = build_policy()
        policy.preload([0])
        policy.submit(request(1, 0), 0)
        assert policy.pending_count() == 1
        policy.advance(0)
        assert policy.pending_count() == 1  # now active
        run_until(policy, 1)
        assert policy.pending_count() == 0
