"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.hardware.disk import SABRE_DISK, TABLE3_DISK
from repro.media.objects import MediaObject, MediaType
from repro.sim.kernel import Simulation
from repro.sim.rng import RandomStream


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden fixtures under tests/golden/data "
             "instead of comparing against them",
    )


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Keep CLI/executor default caching out of the repository tree."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def sim() -> Simulation:
    """A fresh simulation kernel."""
    return Simulation()


@pytest.fixture
def stream() -> RandomStream:
    """A deterministic random stream."""
    return RandomStream(seed=1234)


@pytest.fixture
def sabre():
    """The §3.1 example drive."""
    return SABRE_DISK


@pytest.fixture
def table3():
    """The Table 3 simulation drive."""
    return TABLE3_DISK


def make_object(
    object_id: int = 0,
    bandwidth: float = 60.0,
    num_subobjects: int = 6,
    degree: int = 3,
    fragment_size: float = 12.096,
    name: str = "video",
) -> MediaObject:
    """A small media object for unit tests."""
    return MediaObject(
        object_id=object_id,
        media_type=MediaType(name=name, display_bandwidth=bandwidth),
        num_subobjects=num_subobjects,
        degree=degree,
        fragment_size=fragment_size,
    )


@pytest.fixture
def small_object() -> MediaObject:
    """6 subobjects, M=3."""
    return make_object()
